"""Polynomial-chaos expansions — the paper's statistical model, grown.

The SSCM produces coefficients ``x_alpha`` of the expansion (paper
eq. 4); the mean is the zeroth coefficient and the variance is
``sum x_alpha^2 <He_alpha^2>`` (paper eq. 5).  A fitted
:class:`PolynomialChaos` is also a cheap surrogate: it can be evaluated
and Monte-Carlo-sampled at negligible cost, which the ablation benches
use.

The paper's model is the order-2 total-degree chaos
(:class:`QuadraticPCE`, kept as an alias so every stored surrogate and
serving path keeps working); the class itself carries *any*
:class:`~repro.stochastic.hermite.HermiteBasis`, including the
explicit order-adaptive truncations the dimension-adaptive engine
derives from its accepted index set.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StochasticError
from repro.stochastic.hermite import HermiteBasis

#: Default number of sample rows evaluated per chunk.  At the paper's
#: d = 34 the quadratic basis has 630 columns, so one chunk's design
#: matrix stays under ~85 MB of float64; million-row evaluations never
#: materialize the full ``(m, basis.size)`` matrix.
DEFAULT_CHUNK_SIZE = 16384


class PolynomialChaos:
    """Hermite PC expansion of a vector-valued quantity of interest.

    Parameters
    ----------
    basis:
        The multivariate Hermite basis — total-degree (any order) or
        an explicit anisotropic index set.
    coefficients:
        ``(basis.size, output_dim)`` array of expansion coefficients.
    output_names:
        Optional names of the QoI components (table row labels).
    """

    def __init__(self, basis: HermiteBasis, coefficients: np.ndarray,
                 output_names=None):
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.ndim == 1:
            coefficients = coefficients[:, None]
        if coefficients.shape[0] != basis.size:
            raise StochasticError(
                f"coefficients must have {basis.size} rows, "
                f"got {coefficients.shape}")
        self.basis = basis
        self.coefficients = coefficients
        if output_names is not None:
            output_names = list(output_names)
            if len(output_names) != coefficients.shape[1]:
                raise StochasticError(
                    "output_names length must match output dimension")
        self.output_names = output_names

    # ------------------------------------------------------------------
    @classmethod
    def fit_quadrature(cls, basis: HermiteBasis, points: np.ndarray,
                       weights: np.ndarray, values: np.ndarray,
                       output_names=None) -> "PolynomialChaos":
        """Spectral projection: ``x_a = sum_k w_k f(z_k) He_a(z_k) / <He_a^2>``."""
        points = np.asarray(points, dtype=float)
        weights = np.asarray(weights, dtype=float)
        values = np.asarray(values, dtype=float)
        if values.ndim == 1:
            values = values[:, None]
        if points.shape[0] != weights.size or values.shape[0] != weights.size:
            raise StochasticError(
                "points, weights and values must agree in length")
        design = basis.evaluate(points)
        raw = design.T @ (weights[:, None] * values)
        coefficients = raw / basis.norms_squared[:, None]
        return cls(basis, coefficients, output_names=output_names)

    @classmethod
    def fit_regression(cls, basis: HermiteBasis, points: np.ndarray,
                       values: np.ndarray,
                       output_names=None) -> "PolynomialChaos":
        """Least-squares fit (robust alternative when weights are noisy)."""
        points = np.asarray(points, dtype=float)
        values = np.asarray(values, dtype=float)
        if values.ndim == 1:
            values = values[:, None]
        design = basis.evaluate(points)
        if design.shape[0] < design.shape[1]:
            raise StochasticError(
                f"{design.shape[0]} samples cannot determine "
                f"{design.shape[1]} coefficients")
        coefficients, *_ = np.linalg.lstsq(design, values, rcond=None)
        return cls(basis, coefficients, output_names=output_names)

    # ------------------------------------------------------------------
    @property
    def output_dim(self) -> int:
        return self.coefficients.shape[1]

    @property
    def mean(self) -> np.ndarray:
        """Paper eq. (5): the zeroth coefficient."""
        return self.coefficients[0].copy()

    @property
    def variance(self) -> np.ndarray:
        """Paper eq. (5): ``sum_a>0 x_a^2 <He_a^2>``."""
        higher = self.coefficients[1:]
        norms = self.basis.norms_squared[1:, None]
        return (higher * higher * norms).sum(axis=0)

    @property
    def std(self) -> np.ndarray:
        return np.sqrt(self.variance)

    def evaluate(self, zeta: np.ndarray,
                 chunk_size: int = None) -> np.ndarray:
        """Evaluate the surrogate at standard-normal points.

        ``zeta`` of shape ``(dim,)`` or ``(m, dim)``; returns
        ``(output_dim,)`` or ``(m, output_dim)``.  With ``chunk_size``
        set, rows are evaluated in blocks so the ``(m, basis.size)``
        design matrix is never materialized at once (identical values,
        bounded memory).
        """
        zeta = np.asarray(zeta, dtype=float)
        single = zeta.ndim == 1
        if not single and chunk_size is not None \
                and zeta.shape[0] > chunk_size:
            if chunk_size < 1:
                raise StochasticError(
                    f"chunk_size must be >= 1, got {chunk_size}")
            out = np.empty((zeta.shape[0], self.output_dim))
            for start in range(0, zeta.shape[0], chunk_size):
                block = zeta[start:start + chunk_size]
                out[start:start + chunk_size] = \
                    self.basis.evaluate(block) @ self.coefficients
            return out
        design = self.basis.evaluate(zeta)
        out = design @ self.coefficients
        return out[0] if single else out

    def sample_chunks(self, rng: np.random.Generator, num_samples: int,
                      chunk_size: int = DEFAULT_CHUNK_SIZE):
        """Yield ``(start, (count, output_dim))`` evaluated sample blocks.

        The one chunked-sampling loop everything streams through:
        draws standard normals and evaluates block by block, so neither
        the design matrix nor the sample matrix is ever materialized.
        Chunked draws from a :class:`numpy.random.Generator` fill the
        same stream as one big draw, so concatenated blocks are
        independent of ``chunk_size``.
        """
        if num_samples < 1:
            raise StochasticError(
                f"num_samples must be >= 1, got {num_samples}")
        if chunk_size < 1:
            raise StochasticError(
                f"chunk_size must be >= 1, got {chunk_size}")
        for start in range(0, num_samples, chunk_size):
            count = min(chunk_size, num_samples - start)
            zeta = rng.standard_normal((count, self.basis.dim))
            yield start, self.evaluate(zeta)

    def sample_values(self, rng: np.random.Generator, num_samples: int,
                      chunk_size: int = DEFAULT_CHUNK_SIZE) -> np.ndarray:
        """Draw ``(num_samples, output_dim)`` surrogate samples.

        Chunked via :meth:`sample_chunks`: only the ``output_dim``-wide
        result is held in full, never the design matrix.
        """
        out = np.empty((num_samples, self.output_dim))
        for start, values in self.sample_chunks(rng, num_samples,
                                                chunk_size):
            out[start:start + values.shape[0]] = values
        return out

    def sample_statistics(self, rng: np.random.Generator,
                          num_samples: int = 100000,
                          chunk_size: int = DEFAULT_CHUNK_SIZE):
        """Surrogate Monte Carlo: (mean, std) from cheap samples.

        Streams through :meth:`sample_chunks`, accumulating first and
        second moments *about the expansion's exact mean* (so the
        one-pass variance does not cancel catastrophically when
        ``std << |mean|``); arbitrarily large ``num_samples`` use
        memory bounded by ``chunk_size`` rows.
        """
        if num_samples < 2:
            raise StochasticError(
                f"num_samples must be >= 2, got {num_samples}")
        pivot = self.mean
        total = np.zeros(self.output_dim)
        total_sq = np.zeros(self.output_dim)
        for _, values in self.sample_chunks(rng, num_samples,
                                            chunk_size):
            deviations = values - pivot
            total += deviations.sum(axis=0)
            total_sq += (deviations * deviations).sum(axis=0)
        shift = total / num_samples
        variance = (total_sq - num_samples * shift * shift) \
            / (num_samples - 1)
        return pivot + shift, np.sqrt(np.clip(variance, 0.0, None))

    def output_labels(self) -> list:
        """Output names, or positional ``qoi_k`` placeholders."""
        if self.output_names is None:
            return [f"qoi_{k}" for k in range(self.output_dim)]
        return list(self.output_names)

    # ------------------------------------------------------------------
    def to_arrays(self) -> dict:
        """Serializable form: plain arrays + scalars (npz-friendly).

        Inverse of :meth:`from_arrays`.  A total-degree basis is
        reconstructed from ``(dim, order)`` alone — the exact layout
        every pre-existing stored surrogate uses — while an explicit
        (order-adaptive) basis additionally carries its multi-index
        set as a ``(size, dim)`` integer array.
        """
        arrays = {
            "dim": np.int64(self.basis.dim),
            "order": np.int64(self.basis.order),
            "coefficients": self.coefficients,
        }
        if self.basis.truncation != "total":
            arrays["basis_indices"] = np.asarray(self.basis.indices,
                                                 dtype=np.int64)
        if self.output_names is not None:
            arrays["output_names"] = np.asarray(self.output_names,
                                                dtype=np.str_)
        return arrays

    @classmethod
    def from_arrays(cls, arrays: dict) -> "PolynomialChaos":
        """Rebuild a PCE from :meth:`to_arrays` output.

        Entries without ``basis_indices`` (every surrogate stored
        before order-adaptive bases existed) load exactly as before:
        a total-degree basis of the stored ``(dim, order)``.
        """
        try:
            dim = int(arrays["dim"])
            if "basis_indices" in arrays:
                index_rows = np.asarray(arrays["basis_indices"])
                basis = HermiteBasis(
                    dim, indices=[tuple(int(a) for a in row)
                                  for row in index_rows])
            else:
                basis = HermiteBasis(dim, order=int(arrays["order"]))
            coefficients = np.asarray(arrays["coefficients"], dtype=float)
        except KeyError as exc:
            raise StochasticError(
                f"serialized PCE is missing field {exc}") from exc
        names = arrays.get("output_names")
        if names is not None:
            names = [str(name) for name in np.asarray(names)]
        return cls(basis, coefficients, output_names=names)


#: The paper's order-2 chaos by its historical name.  Every module that
#: grew up against the quadratic model (serving, stores, benches) keeps
#: importing ``QuadraticPCE``; it *is* :class:`PolynomialChaos`, which
#: defaults to the order-2 total-degree basis.
QuadraticPCE = PolynomialChaos
