"""Quadratic polynomial-chaos expansion — the paper's statistical model.

The SSCM produces coefficients ``x_alpha`` of the expansion (paper
eq. 4); the mean is the zeroth coefficient and the variance is
``sum x_alpha^2 <He_alpha^2>`` (paper eq. 5).  A fitted
:class:`QuadraticPCE` is also a cheap surrogate: it can be evaluated and
Monte-Carlo-sampled at negligible cost, which the ablation benches use.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StochasticError
from repro.stochastic.hermite import HermiteBasis


class QuadraticPCE:
    """Hermite PC expansion of a vector-valued quantity of interest.

    Parameters
    ----------
    basis:
        The multivariate Hermite basis.
    coefficients:
        ``(basis.size, output_dim)`` array of expansion coefficients.
    output_names:
        Optional names of the QoI components (table row labels).
    """

    def __init__(self, basis: HermiteBasis, coefficients: np.ndarray,
                 output_names=None):
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.ndim == 1:
            coefficients = coefficients[:, None]
        if coefficients.shape[0] != basis.size:
            raise StochasticError(
                f"coefficients must have {basis.size} rows, "
                f"got {coefficients.shape}")
        self.basis = basis
        self.coefficients = coefficients
        if output_names is not None:
            output_names = list(output_names)
            if len(output_names) != coefficients.shape[1]:
                raise StochasticError(
                    "output_names length must match output dimension")
        self.output_names = output_names

    # ------------------------------------------------------------------
    @classmethod
    def fit_quadrature(cls, basis: HermiteBasis, points: np.ndarray,
                       weights: np.ndarray, values: np.ndarray,
                       output_names=None) -> "QuadraticPCE":
        """Spectral projection: ``x_a = sum_k w_k f(z_k) He_a(z_k) / <He_a^2>``."""
        points = np.asarray(points, dtype=float)
        weights = np.asarray(weights, dtype=float)
        values = np.asarray(values, dtype=float)
        if values.ndim == 1:
            values = values[:, None]
        if points.shape[0] != weights.size or values.shape[0] != weights.size:
            raise StochasticError(
                "points, weights and values must agree in length")
        design = basis.evaluate(points)
        raw = design.T @ (weights[:, None] * values)
        coefficients = raw / basis.norms_squared[:, None]
        return cls(basis, coefficients, output_names=output_names)

    @classmethod
    def fit_regression(cls, basis: HermiteBasis, points: np.ndarray,
                       values: np.ndarray,
                       output_names=None) -> "QuadraticPCE":
        """Least-squares fit (robust alternative when weights are noisy)."""
        points = np.asarray(points, dtype=float)
        values = np.asarray(values, dtype=float)
        if values.ndim == 1:
            values = values[:, None]
        design = basis.evaluate(points)
        if design.shape[0] < design.shape[1]:
            raise StochasticError(
                f"{design.shape[0]} samples cannot determine "
                f"{design.shape[1]} coefficients")
        coefficients, *_ = np.linalg.lstsq(design, values, rcond=None)
        return cls(basis, coefficients, output_names=output_names)

    # ------------------------------------------------------------------
    @property
    def output_dim(self) -> int:
        return self.coefficients.shape[1]

    @property
    def mean(self) -> np.ndarray:
        """Paper eq. (5): the zeroth coefficient."""
        return self.coefficients[0].copy()

    @property
    def variance(self) -> np.ndarray:
        """Paper eq. (5): ``sum_a>0 x_a^2 <He_a^2>``."""
        higher = self.coefficients[1:]
        norms = self.basis.norms_squared[1:, None]
        return (higher * higher * norms).sum(axis=0)

    @property
    def std(self) -> np.ndarray:
        return np.sqrt(self.variance)

    def evaluate(self, zeta: np.ndarray) -> np.ndarray:
        """Evaluate the surrogate at standard-normal points.

        ``zeta`` of shape ``(dim,)`` or ``(m, dim)``; returns
        ``(output_dim,)`` or ``(m, output_dim)``.
        """
        zeta = np.asarray(zeta, dtype=float)
        single = zeta.ndim == 1
        design = self.basis.evaluate(zeta)
        out = design @ self.coefficients
        return out[0] if single else out

    def sample_statistics(self, rng: np.random.Generator,
                          num_samples: int = 100000):
        """Surrogate Monte Carlo: (mean, std) from cheap samples."""
        zeta = rng.standard_normal((num_samples, self.basis.dim))
        values = self.evaluate(zeta)
        return values.mean(axis=0), values.std(axis=0, ddof=1)
