"""Variance decomposition (Sobol indices) from the quadratic chaos.

A fitted Hermite PCE makes global sensitivity analysis free: the
variance contribution of each input (or group of inputs) is the sum of
the squared coefficients of the basis terms involving it.  This
extends the paper's statistical model to answer *which* variation
source drives the spread — e.g. how much of Table I's std comes from
the roughness groups versus the RDF group.

For a quadratic chaos the classic identities hold:

* main-effect index of variable i: terms involving *only* i;
* total-effect index of variable i: all terms involving i;
* group indices: the same with "i" replaced by "any member of the set".
"""

from __future__ import annotations

import numpy as np

from repro.errors import StochasticError
from repro.stochastic.pce import QuadraticPCE


def _term_variances(pce: QuadraticPCE) -> np.ndarray:
    """Variance contribution of every basis term, ``(terms, outputs)``."""
    coef = pce.coefficients
    norms = pce.basis.norms_squared[:, None]
    contrib = coef * coef * norms
    contrib[0] = 0.0  # the mean term carries no variance
    return contrib


def main_effect_indices(pce: QuadraticPCE) -> np.ndarray:
    """First-order (main effect) Sobol indices, ``(dim, outputs)``.

    Entry ``[i, k]`` is the fraction of output ``k``'s variance
    explained by terms involving only variable ``i``.
    """
    contrib = _term_variances(pce)
    variance = contrib.sum(axis=0)
    variance = np.where(variance > 0.0, variance, 1.0)
    out = np.zeros((pce.basis.dim, pce.output_dim))
    for t, index in enumerate(pce.basis.indices):
        active = [i for i, order in enumerate(index) if order > 0]
        if len(active) == 1:
            out[active[0]] += contrib[t]
    return out / variance


def total_effect_indices(pce: QuadraticPCE) -> np.ndarray:
    """Total-effect Sobol indices, ``(dim, outputs)``.

    Entry ``[i, k]`` counts every variance term in which variable ``i``
    participates (so columns may sum to more than 1 in the presence of
    interactions).
    """
    contrib = _term_variances(pce)
    variance = contrib.sum(axis=0)
    variance = np.where(variance > 0.0, variance, 1.0)
    out = np.zeros((pce.basis.dim, pce.output_dim))
    for t, index in enumerate(pce.basis.indices):
        for i, order in enumerate(index):
            if order > 0:
                out[i] += contrib[t]
    return out / variance


def group_indices(pce: QuadraticPCE, groups: dict) -> dict:
    """Closed (group) Sobol indices for disjoint variable sets.

    Parameters
    ----------
    pce:
        The fitted chaos.
    groups:
        ``{name: iterable of variable indices}``; sets must be disjoint
        but need not cover every variable.

    Returns
    -------
    dict
        ``{name: (outputs,) fraction of variance from terms whose
        active variables all belong to the named set}`` plus the key
        ``"__interaction__"`` collecting cross-group terms.
    """
    sets = {}
    seen = set()
    for name, ids in groups.items():
        ids = frozenset(int(i) for i in ids)
        if not ids:
            raise StochasticError(f"group {name!r} is empty")
        if ids & seen:
            raise StochasticError("groups must be disjoint")
        if max(ids) >= pce.basis.dim or min(ids) < 0:
            raise StochasticError(
                f"group {name!r} has out-of-range variable indices")
        seen |= ids
        sets[name] = ids

    contrib = _term_variances(pce)
    variance = contrib.sum(axis=0)
    variance = np.where(variance > 0.0, variance, 1.0)
    out = {name: np.zeros(pce.output_dim) for name in sets}
    out["__interaction__"] = np.zeros(pce.output_dim)
    for t, index in enumerate(pce.basis.indices):
        active = frozenset(i for i, order in enumerate(index)
                           if order > 0)
        if not active:
            continue
        owner = None
        for name, ids in sets.items():
            if active <= ids:
                owner = name
                break
        if owner is None:
            out["__interaction__"] += contrib[t]
        else:
            out[owner] += contrib[t]
    return {name: vals / variance for name, vals in out.items()}


def group_indices_from_reduced_space(pce: QuadraticPCE,
                                     reduced_space) -> dict:
    """Group Sobol indices keyed by perturbation-group name.

    Convenience wrapper mapping the slices of a
    :class:`~repro.stochastic.reduction.ReducedSpace` onto
    :func:`group_indices` — the per-source variance budget of a
    Table I / Table II run.
    """
    groups = {rg.group.name: range(rg.slice.start, rg.slice.stop)
              for rg in reduced_space.groups}
    return group_indices(pce, groups)
