"""Smolyak sparse grids over Gauss-Hermite rules.

The SSCM of Zhu et al. (paper Section II.B) picks collocation points
with "the sparse grid technique"; for ``d`` reduced variables it quotes
``2 d^2 + 3 d + 1`` points.  The standard level-2 Smolyak construction
implemented here — 1-D rule sizes (1, 3, 5) with the combination
technique — yields ``2 d^2 + 4 d + 1`` distinct points, the same O(d^2)
scaling and polynomial exactness class; :func:`paper_point_count`
reports the quoted formula for comparison (the tests pin both).

Weights come from the Smolyak combination coefficients; for level 2
they integrate all polynomials of total degree <= 5 exactly in the
cross terms needed by a quadratic chaos projection.

Coincident points across combination terms merge *exactly* through the
shared 1-D :class:`~repro.stochastic.gauss_hermite.NodeTable` (node
identity by exact value, point identity by node-id tuple), so nodes at
any level can neither alias nor split — no decimal-rounding key hack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.errors import StochasticError
from repro.stochastic.gauss_hermite import (
    _LEVEL_SIZES,
    NodeTable,
    gauss_hermite_rule,
    rule_size_for_level,
)


@dataclass
class SparseGrid:
    """Collocation nodes and weights.

    Attributes
    ----------
    points:
        ``(num_points, dim)`` standard-normal-space nodes.
    weights:
        ``(num_points,)`` quadrature weights (sum to 1).
    level:
        Smolyak level the grid was built at.
    """

    points: np.ndarray
    weights: np.ndarray
    level: int

    @property
    def num_points(self) -> int:
        return self.points.shape[0]

    @property
    def dim(self) -> int:
        return self.points.shape[1]


def paper_point_count(dim: int) -> int:
    """The collocation-point count quoted by the paper: 2 d^2 + 3 d + 1.

    Matches the run counts of Section IV: 1035 for d = 22 and 2415 for
    d = 34.
    """
    if dim < 1:
        raise StochasticError(f"dim must be >= 1, got {dim}")
    return 2 * dim * dim + 3 * dim + 1


def smolyak_point_count(dim: int) -> int:
    """Distinct points of the level-2 (1,3,5) Smolyak grid.

    ``2 d^2 + 4 d + 1`` for ``d >= 2``; for ``d = 1`` the combination
    telescopes to the bare 5-point rule.
    """
    if dim < 1:
        raise StochasticError(f"dim must be >= 1, got {dim}")
    if dim == 1:
        return 5
    return 2 * dim * dim + 4 * dim + 1


def _level_multi_indices(dim: int, level: int):
    """Multi-levels ``l`` with ``|l| <= level`` and per-axis ``l_i`` <=
    level, together with their Smolyak combination coefficients."""
    out = []
    for total in range(max(0, level - dim + 1), level + 1):
        coeff = (-1) ** (level - total) * math.comb(dim - 1, level - total)
        if coeff == 0:
            continue
        for levels in _compositions_bounded(dim, total, level):
            out.append((levels, coeff))
    return out


def _compositions_bounded(dim: int, total: int, bound: int):
    """Multi-levels of exactly ``total`` with entries <= ``bound``.

    Enumerated sparsely: only the nonzero slots are chosen, because for
    level 2 at most two coordinates are nonzero regardless of ``dim``.
    """
    if total == 0:
        yield tuple([0] * dim)
        return
    # Partitions of `total` into at most `total` positive parts <= bound.
    for num_active in range(1, min(dim, total) + 1):
        for parts in _partitions(total, num_active, bound):
            for slots in combinations(range(dim), num_active):
                # Distinct orderings of the parts over the chosen slots.
                for ordering in _unique_permutations(parts):
                    vec = [0] * dim
                    for slot, val in zip(slots, ordering):
                        vec[slot] = val
                    yield tuple(vec)


def _partitions(total: int, parts: int, bound: int):
    """Integer partitions of ``total`` into exactly ``parts`` parts,
    each in ``[1, bound]``, non-increasing."""
    if parts == 1:
        if 1 <= total <= bound:
            yield (total,)
        return
    for head in range(min(total - parts + 1, bound), 0, -1):
        for tail in _partitions(total - head, parts - 1, min(head, bound)):
            yield (head,) + tail


def _unique_permutations(values):
    """Distinct orderings of a small tuple."""
    from itertools import permutations
    return sorted(set(permutations(values)))


def smolyak_sparse_grid(dim: int, level: int = 2) -> SparseGrid:
    """Build the Smolyak sparse grid over Gauss-Hermite rules.

    Parameters
    ----------
    dim:
        Number of independent standard-normal variables ``d``.
    level:
        Smolyak level; 2 (the default) supports the quadratic chaos of
        the paper.
    """
    if dim < 1:
        raise StochasticError(f"dim must be >= 1, got {dim}")
    if level < 0 or level >= len(_LEVEL_SIZES) + 10:
        raise StochasticError(f"unsupported level {level}")
    table = NodeTable()
    accumulator = {}
    for levels, coeff in _level_multi_indices(dim, level):
        keys, weights = table.tensor_rule(levels)
        for key, weight in zip(keys, weights):
            accumulator[key] = accumulator.get(key, 0.0) + coeff * weight

    keys = sorted(accumulator,
                  key=lambda k: tuple(table.value(i) for i in k))
    points = np.array([[table.value(i) for i in key] for key in keys])
    weights = np.array([accumulator[key] for key in keys])
    # Drop points whose combined weight cancelled exactly.
    keep = np.abs(weights) > 1e-14
    return SparseGrid(points=points[keep], weights=weights[keep],
                      level=level)


def _size_for_level(level: int) -> int:
    return rule_size_for_level(level)


def tensor_grid(dim: int, points_per_axis: int = 3) -> SparseGrid:
    """Full tensor Gauss-Hermite grid (the ablation baseline).

    ``points_per_axis ** dim`` points — the exponential cost the sparse
    grid avoids; only sensible for small ``dim``.
    """
    if dim < 1:
        raise StochasticError(f"dim must be >= 1, got {dim}")
    if points_per_axis ** dim > 2_000_000:
        raise StochasticError(
            f"tensor grid with {points_per_axis}^{dim} points is "
            f"infeasible; use the sparse grid")
    nodes, weights = gauss_hermite_rule(points_per_axis)
    meshes = np.meshgrid(*([nodes] * dim), indexing="ij")
    wmeshes = np.meshgrid(*([weights] * dim), indexing="ij")
    points = np.stack([m.ravel() for m in meshes], axis=1)
    w = np.ones(points.shape[0])
    for wm in wmeshes:
        w = w * wm.ravel()
    return SparseGrid(points=points, weights=w, level=-1)
