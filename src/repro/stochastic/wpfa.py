"""Weighted principal factor analysis (wPFA) — Section III.C.

PFA ranks factors by their share of the *input* variance; wPFA ranks
them by their influence on the *output*, using a diagonal weight matrix
``W`` built from the nominal solution: panel charges for capacitance
extraction, ``w_i = J0_i * nodeV_i`` (nominal current density times
dual volume) for the coupled current problem (paper eq. 9).

Implementation: eigendecompose the symmetrically weighted covariance
``W Sigma W`` and map back through ``W^{-1}`` (paper eq. 10,
``xi = W^{-1} U zeta``), so the retained factors are those carrying the
most *weighted* variance.  With no truncation the reconstruction is
exact: ``B B^T = W^{-1} (W Sigma W) W^{-1} = Sigma``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StochasticError
from repro.stochastic.pfa import ReductionMap, _choose_rank


def wpfa_reduce(covariance: np.ndarray, weights: np.ndarray,
                energy: float = 0.95,
                max_variables: int = None) -> ReductionMap:
    """Weighted PFA reduction.

    Parameters
    ----------
    covariance:
        ``(n, n)`` covariance of the correlated variables.
    weights:
        ``(n,)`` positive influence weights from the nominal solution.
        They are normalized internally, so only ratios matter.
    energy:
        Weighted-variance fraction to retain.
    max_variables:
        Optional hard cap on the reduced count.
    """
    covariance = np.asarray(covariance, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if covariance.ndim != 2 or covariance.shape[0] != covariance.shape[1]:
        raise StochasticError(
            f"covariance must be square, got {covariance.shape}")
    if weights.shape != (covariance.shape[0],):
        raise StochasticError(
            f"weights must have shape ({covariance.shape[0]},), "
            f"got {weights.shape}")
    if np.any(~np.isfinite(weights)) or np.any(weights < 0.0):
        raise StochasticError("weights must be finite and non-negative")
    if not 0.0 < energy <= 1.0:
        raise StochasticError(f"energy must be in (0, 1], got {energy}")

    # Guard against zero weights (nodes the nominal solution says are
    # uninfluential): floor them at a small fraction of the mean weight
    # so W stays invertible while keeping their factors de-prioritized.
    mean_weight = weights.mean()
    if mean_weight <= 0.0:
        raise StochasticError(
            "all weights are zero; fall back to plain PFA")
    w = np.maximum(weights, 1e-6 * mean_weight) / mean_weight

    weighted = (w[:, None] * covariance) * w[None, :]
    eigenvalues, eigenvectors = np.linalg.eigh(weighted)
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = np.clip(eigenvalues[order], 0.0, None)
    eigenvectors = eigenvectors[:, order]
    rank = _choose_rank(eigenvalues, energy, max_variables)
    matrix = (eigenvectors[:, :rank]
              * np.sqrt(eigenvalues[:rank])) / w[:, None]
    captured = float(eigenvalues[:rank].sum() / eigenvalues.sum())
    return ReductionMap(matrix=matrix, eigenvalues=eigenvalues,
                        energy_captured=captured)
