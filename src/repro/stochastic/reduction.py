"""Per-group reduction bookkeeping.

The paper reduces every perturbation group independently ("the wPFA
reduces the number of random variables from 128 and 64 to 6 and 4") and
concatenates the reduced variables of all groups into the
``d``-dimensional vector the sparse grid lives on.  A
:class:`ReducedSpace` owns that concatenation and maps a global
``zeta`` back to per-group perturbation vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StochasticError
from repro.stochastic.pfa import ReductionMap, pfa_reduce
from repro.stochastic.wpfa import wpfa_reduce
from repro.variation.groups import PerturbationGroup


@dataclass
class ReducedGroup:
    """One group with its reduction map and global-variable slice."""

    group: PerturbationGroup
    reduction: ReductionMap
    offset: int

    @property
    def slice(self) -> slice:
        return slice(self.offset, self.offset + self.reduction.reduced_size)


class ReducedSpace:
    """Concatenated reduced variables of all perturbation groups."""

    def __init__(self, reduced_groups: list):
        if not reduced_groups:
            raise StochasticError("at least one group is required")
        self.groups = reduced_groups
        self.dim = sum(g.reduction.reduced_size for g in reduced_groups)

    def split(self, zeta: np.ndarray) -> dict:
        """Map global ``zeta`` to ``{group name: xi vector}``."""
        zeta = np.asarray(zeta, dtype=float)
        if zeta.shape != (self.dim,):
            raise StochasticError(
                f"zeta must have shape ({self.dim},), got {zeta.shape}")
        return {g.group.name: g.reduction.reconstruct(zeta[g.slice])
                for g in self.groups}

    def summary(self) -> str:
        parts = [f"{g.group.name}: {g.group.size} -> "
                 f"{g.reduction.reduced_size} "
                 f"({100 * g.reduction.energy_captured:.1f}% energy)"
                 for g in self.groups]
        return "; ".join(parts) + f"; total d = {self.dim}"


def reduce_groups(groups: list, method: str = "wpfa",
                  weights_by_group: dict = None, energy: float = 0.95,
                  max_variables_by_group: dict = None) -> ReducedSpace:
    """Reduce every perturbation group and build the global space.

    Parameters
    ----------
    groups:
        List of :class:`~repro.variation.groups.PerturbationGroup`.
    method:
        ``"wpfa"`` (needs weights) or ``"pfa"``.
    weights_by_group:
        ``{group name: (n,) weights}`` from the nominal solution; groups
        missing from the mapping fall back to plain PFA.
    energy:
        Variance fraction to retain per group.
    max_variables_by_group:
        Optional ``{group name: p}`` hard caps (to pin the paper's
        reduced counts exactly).
    """
    if method not in ("pfa", "wpfa"):
        raise StochasticError(f"unknown reduction method {method!r}")
    reduced = []
    offset = 0
    for group in groups:
        cap = None
        if max_variables_by_group is not None:
            cap = max_variables_by_group.get(group.name)
        weights = None
        if method == "wpfa" and weights_by_group is not None:
            weights = weights_by_group.get(group.name)
        if method == "wpfa" and weights is not None:
            reduction = wpfa_reduce(group.covariance, weights,
                                    energy=energy, max_variables=cap)
        else:
            reduction = pfa_reduce(group.covariance, energy=energy,
                                   max_variables=cap)
        reduced.append(ReducedGroup(group=group, reduction=reduction,
                                    offset=offset))
        offset += reduction.reduced_size
    return ReducedSpace(reduced)
