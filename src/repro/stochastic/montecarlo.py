"""Monte-Carlo reference driver.

The paper validates the SSCM statistics against a 10000-run Monte-Carlo
simulation on the *same* deterministic solver, sampling the full
(unreduced) correlated variables.  This driver does exactly that; the
run count is a parameter because the 1/sqrt(N) convergence makes the
full 10000 unnecessary for shape checks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import StochasticError


@dataclass
class MonteCarloResult:
    """Sample statistics plus run accounting."""

    mean: np.ndarray
    std: np.ndarray
    num_runs: int
    wall_time: float
    output_names: list = None
    samples: np.ndarray = None

    def standard_error(self) -> np.ndarray:
        """Standard error of the MC mean estimate."""
        return self.std / np.sqrt(self.num_runs)


def run_monte_carlo(sample_fn, num_runs: int, seed: int = 0,
                    output_names=None, keep_samples: bool = False,
                    progress=None) -> MonteCarloResult:
    """Plain Monte Carlo over a sampling function.

    Parameters
    ----------
    sample_fn:
        Callable ``rng -> QoI vector``; draws its own random inputs from
        the provided generator and runs one deterministic solve.
    num_runs:
        Number of samples (the paper uses 10000).
    seed:
        Seed of the :class:`numpy.random.Generator` driving the run.
    keep_samples:
        Retain the raw ``(num_runs, k)`` sample matrix (for histograms
        and convergence studies).
    progress:
        Optional callable ``(completed, total) -> None``.
    """
    if num_runs < 2:
        raise StochasticError(f"num_runs must be >= 2, got {num_runs}")
    rng = np.random.default_rng(seed)
    values = None
    start = time.perf_counter()
    for k in range(num_runs):
        # ravel keeps the historically-accepted (1, k) row vectors.
        sample = np.asarray(sample_fn(rng), dtype=float).ravel()
        if values is None:
            # The QoI width is only known after the first evaluation;
            # preallocate the full matrix then instead of growing a list.
            values = np.empty((num_runs, sample.size))
        if sample.shape != (values.shape[1],):
            raise StochasticError(
                f"sample_fn returned shape {sample.shape} on run {k}, "
                f"expected ({values.shape[1]},)")
        values[k] = sample
        if progress is not None:
            progress(k + 1, num_runs)
    wall = time.perf_counter() - start
    return MonteCarloResult(
        mean=values.mean(axis=0),
        std=values.std(axis=0, ddof=1),
        num_runs=num_runs,
        wall_time=wall,
        output_names=list(output_names) if output_names else None,
        samples=values if keep_samples else None,
    )
