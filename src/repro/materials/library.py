"""Standard material definitions.

Factory functions (rather than module-level singletons) so that examples
can tweak parameters without mutating shared state; materials themselves
are frozen dataclasses.
"""

from __future__ import annotations

from repro.materials.material import Insulator, Metal, Semiconductor


def copper(name: str = "copper") -> Metal:
    """Copper: the usual TSV fill metal."""
    return Metal(name=name, eps_r=1.0, sigma=5.8e7)


def tungsten(name: str = "tungsten") -> Metal:
    """Tungsten: common for via plugs and contacts."""
    return Metal(name=name, eps_r=1.0, sigma=1.79e7)


def aluminum(name: str = "aluminum") -> Metal:
    """Aluminum: legacy interconnect metal."""
    return Metal(name=name, eps_r=1.0, sigma=3.5e7)


def silicon_dioxide(name: str = "sio2") -> Insulator:
    """Thermal SiO2 (TSV liner / inter-layer dielectric)."""
    return Insulator(name=name, eps_r=3.9, sigma=0.0)


def silicon_nitride(name: str = "si3n4") -> Insulator:
    """Silicon nitride passivation."""
    return Insulator(name=name, eps_r=7.5, sigma=0.0)


def vacuum(name: str = "vacuum") -> Insulator:
    """Free space (also a reasonable stand-in for air)."""
    return Insulator(name=name, eps_r=1.0, sigma=0.0)


def doped_silicon(net_doping: float, name: str = "silicon",
                  tau: float = 1.0e-6) -> Semiconductor:
    """Silicon with a uniform background doping.

    Parameters
    ----------
    net_doping:
        ``Nd - Na`` [1/m^3]; positive for n-type, negative for p-type.
    name:
        Material name.
    tau:
        SRH lifetime used for both carriers [s].
    """
    donors = max(net_doping, 0.0)
    acceptors = max(-net_doping, 0.0)
    return Semiconductor(
        name=name,
        eps_r=11.7,
        sigma=0.0,
        donor_density=donors,
        acceptor_density=acceptors,
        tau_n=tau,
        tau_p=tau,
    )
