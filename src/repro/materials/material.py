"""Material dataclasses.

The coupled A-V solver distinguishes three material kinds, each selecting a
different governing equation for the scalar potential (paper eq. 1):

* **metal** — current continuity ``div((sigma + j w eps) grad V) = 0``;
* **insulator** — Gauss's law ``div(eps grad V) = 0``;
* **semiconductor** — Gauss's law with free charge
  ``div(eps grad V) + rho = 0`` plus the drift-diffusion system (eq. 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.constants import EPS0, NI_SILICON, T_ROOM
from repro.errors import MaterialError


class MaterialKind(enum.Enum):
    """Which governing equation a region obeys."""

    METAL = "metal"
    INSULATOR = "insulator"
    SEMICONDUCTOR = "semiconductor"


@dataclass(frozen=True)
class Material:
    """Base electromagnetic material.

    Parameters
    ----------
    name:
        Human-readable identifier, unique within a structure.
    eps_r:
        Relative permittivity (dimensionless, > 0).
    sigma:
        Electrical conductivity [S/m] (>= 0).
    mu_r:
        Relative permeability (dimensionless, > 0).
    """

    name: str
    eps_r: float
    sigma: float = 0.0
    mu_r: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise MaterialError("material name must be non-empty")
        if self.eps_r <= 0.0:
            raise MaterialError(
                f"{self.name}: eps_r must be positive, got {self.eps_r}")
        if self.sigma < 0.0:
            raise MaterialError(
                f"{self.name}: sigma must be non-negative, got {self.sigma}")
        if self.mu_r <= 0.0:
            raise MaterialError(
                f"{self.name}: mu_r must be positive, got {self.mu_r}")

    @property
    def kind(self) -> MaterialKind:
        raise NotImplementedError

    @property
    def permittivity(self) -> float:
        """Absolute permittivity ``eps_r * eps0`` [F/m]."""
        return self.eps_r * EPS0

    def admittivity(self, omega: float) -> complex:
        """Complex admittivity ``sigma + j*omega*eps`` [S/m].

        This is the coefficient of the frequency-domain current-continuity
        equation; for a pure insulator it reduces to ``j*omega*eps``.
        """
        return self.sigma + 1j * omega * self.permittivity


@dataclass(frozen=True)
class Metal(Material):
    """A conductor region (current-continuity equation for V)."""

    sigma: float = 5.8e7  # copper-like default

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.sigma <= 0.0:
            raise MaterialError(
                f"{self.name}: a metal needs sigma > 0, got {self.sigma}")

    @property
    def kind(self) -> MaterialKind:
        return MaterialKind.METAL


@dataclass(frozen=True)
class Insulator(Material):
    """A dielectric region (Gauss's law, no free carriers)."""

    @property
    def kind(self) -> MaterialKind:
        return MaterialKind.INSULATOR


@dataclass(frozen=True)
class Semiconductor(Material):
    """A semiconductor region with drift-diffusion carrier transport.

    Parameters (beyond :class:`Material`)
    -------------------------------------
    ni:
        Intrinsic carrier density [1/m^3].
    mu_n, mu_p:
        Low-field electron / hole mobilities [m^2/(V s)].
    tau_n, tau_p:
        SRH carrier lifetimes [s].
    donor_density, acceptor_density:
        Uniform background doping [1/m^3]; spatially varying profiles are
        layered on top via :mod:`repro.materials.doping`.
    temperature:
        Lattice temperature [K].
    """

    ni: float = NI_SILICON
    mu_n: float = 0.14          # silicon electrons, m^2/Vs
    mu_p: float = 0.045         # silicon holes, m^2/Vs
    tau_n: float = 1.0e-6
    tau_p: float = 1.0e-6
    donor_density: float = 0.0
    acceptor_density: float = 0.0
    temperature: float = T_ROOM

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.ni <= 0.0:
            raise MaterialError(f"{self.name}: ni must be positive")
        if self.mu_n <= 0.0 or self.mu_p <= 0.0:
            raise MaterialError(f"{self.name}: mobilities must be positive")
        if self.tau_n <= 0.0 or self.tau_p <= 0.0:
            raise MaterialError(f"{self.name}: lifetimes must be positive")
        if self.donor_density < 0.0 or self.acceptor_density < 0.0:
            raise MaterialError(
                f"{self.name}: doping densities must be non-negative")

    @property
    def kind(self) -> MaterialKind:
        return MaterialKind.SEMICONDUCTOR

    @property
    def net_doping(self) -> float:
        """Net doping ``Nd - Na`` [1/m^3] of the uniform background."""
        return self.donor_density - self.acceptor_density


@dataclass
class MaterialTable:
    """Ordered registry mapping small integer ids to materials.

    Cells of a structure store the integer id; the table resolves it back
    to the :class:`Material`.  Id 0 is reserved for the structure's
    background material.
    """

    materials: list = field(default_factory=list)

    def add(self, material: Material) -> int:
        """Register ``material`` and return its id (idempotent by name)."""
        for idx, existing in enumerate(self.materials):
            if existing.name == material.name:
                if existing != material:
                    raise MaterialError(
                        f"conflicting definitions for material "
                        f"{material.name!r}")
                return idx
        self.materials.append(material)
        return len(self.materials) - 1

    def __getitem__(self, idx: int) -> Material:
        try:
            return self.materials[idx]
        except IndexError as exc:
            raise MaterialError(f"no material with id {idx}") from exc

    def __len__(self) -> int:
        return len(self.materials)

    def id_of(self, name: str) -> int:
        """Return the id of the material called ``name``."""
        for idx, material in enumerate(self.materials):
            if material.name == name:
                return idx
        raise MaterialError(f"no material named {name!r}")
