"""Material models: metals, insulators and doped semiconductors.

These provide the coefficients of the paper's equations (1)-(3):
conductivity ``sigma_c``, relative permittivity ``eps_r``, relative
permeability ``mu_r``, and for semiconductors the carrier transport
parameters (mobilities, lifetimes, intrinsic density, doping).
"""

from repro.materials.material import (
    Material,
    Metal,
    Insulator,
    Semiconductor,
    MaterialKind,
)
from repro.materials.library import (
    copper,
    tungsten,
    aluminum,
    silicon_dioxide,
    silicon_nitride,
    vacuum,
    doped_silicon,
)
from repro.materials.doping import (
    DopingProfile,
    UniformDoping,
    GaussianDoping,
    NodePerturbedDoping,
)
from repro.materials.physics import (
    intrinsic_density,
    mobility_caughey_thomas,
    srh_recombination,
    srh_derivatives,
    equilibrium_potential,
    equilibrium_carriers,
)

__all__ = [
    "Material",
    "Metal",
    "Insulator",
    "Semiconductor",
    "MaterialKind",
    "copper",
    "tungsten",
    "aluminum",
    "silicon_dioxide",
    "silicon_nitride",
    "vacuum",
    "doped_silicon",
    "DopingProfile",
    "UniformDoping",
    "GaussianDoping",
    "NodePerturbedDoping",
    "intrinsic_density",
    "mobility_caughey_thomas",
    "srh_recombination",
    "srh_derivatives",
    "equilibrium_potential",
    "equilibrium_carriers",
]
