"""Semiconductor physics helpers.

These small, heavily tested functions supply the nonlinear coefficients of
the drift-diffusion system (paper eq. 2): mobility models, SRH
generation/recombination ``U(n, p)`` and its derivatives (needed for the
Jacobian of eq. 8), and the thermal-equilibrium relations used for the DC
operating point and for ohmic contact boundary conditions.
"""

from __future__ import annotations

import numpy as np

from repro.constants import NI_SILICON, thermal_voltage


def intrinsic_density(temperature: float = 300.0) -> float:
    """Intrinsic carrier density of silicon [1/m^3].

    Uses the standard ``T^{3/2} exp(-Eg/2kT)`` scaling anchored at the
    300 K value of 1.45e10 cm^-3.  Band-gap narrowing is ignored — the
    paper operates at room temperature throughout.
    """
    eg = 1.12  # silicon band gap [eV]
    vt = thermal_voltage(temperature)
    vt300 = thermal_voltage(300.0)
    ratio = (temperature / 300.0) ** 1.5
    arg = -eg / 2.0 * (1.0 / vt - 1.0 / vt300)
    return NI_SILICON * ratio * float(np.exp(arg))


def mobility_caughey_thomas(doping_total, mu_min: float, mu_max: float,
                            n_ref: float, alpha: float):
    """Caughey-Thomas doping-dependent mobility [m^2/Vs].

    ``mu = mu_min + (mu_max - mu_min) / (1 + (N/N_ref)^alpha)``

    Parameters
    ----------
    doping_total:
        Total ionized impurity density ``Nd + Na`` [1/m^3]; scalar or array.
    mu_min, mu_max:
        Asymptotic mobilities [m^2/Vs].
    n_ref:
        Reference doping [1/m^3].
    alpha:
        Fitting exponent.
    """
    doping_total = np.asarray(doping_total, dtype=float)
    if np.any(doping_total < 0.0):
        raise ValueError("total doping must be non-negative")
    return mu_min + (mu_max - mu_min) / (1.0 + (doping_total / n_ref) ** alpha)


def electron_mobility_si(doping_total):
    """Caughey-Thomas electron mobility for silicon [m^2/Vs]."""
    return mobility_caughey_thomas(doping_total, mu_min=0.00688,
                                   mu_max=0.1414, n_ref=9.2e22, alpha=0.711)


def hole_mobility_si(doping_total):
    """Caughey-Thomas hole mobility for silicon [m^2/Vs]."""
    return mobility_caughey_thomas(doping_total, mu_min=0.00449,
                                   mu_max=0.04705, n_ref=2.23e23, alpha=0.719)


def srh_recombination(n, p, ni: float, tau_n: float, tau_p: float):
    """Shockley-Read-Hall net recombination rate ``U(n, p)`` [1/(m^3 s)].

    ``U = (n p - ni^2) / (tau_p (n + ni) + tau_n (p + ni))``

    Positive when excess carriers recombine, negative under depletion
    (generation).  Accepts scalars or arrays.
    """
    n = np.asarray(n, dtype=float)
    p = np.asarray(p, dtype=float)
    denom = tau_p * (n + ni) + tau_n * (p + ni)
    return (n * p - ni * ni) / denom


def srh_derivatives(n, p, ni: float, tau_n: float, tau_p: float):
    """Partial derivatives ``(dU/dn, dU/dp)`` of the SRH rate.

    Needed for the carrier blocks of the Jacobian matrix (paper eq. 8)
    and for the small-signal AC system.
    """
    n = np.asarray(n, dtype=float)
    p = np.asarray(p, dtype=float)
    denom = tau_p * (n + ni) + tau_n * (p + ni)
    numer = n * p - ni * ni
    du_dn = p / denom - numer * tau_p / (denom * denom)
    du_dp = n / denom - numer * tau_n / (denom * denom)
    return du_dn, du_dp


def equilibrium_potential(net_doping, ni: float, vt: float):
    """Thermal-equilibrium electrostatic potential [V].

    For net doping ``N = Nd - Na`` the charge-neutral equilibrium potential
    relative to intrinsic is ``V = Vt * asinh(N / (2 ni))``.  This pins the
    potential at ohmic contacts and provides the Newton initial guess.
    """
    net_doping = np.asarray(net_doping, dtype=float)
    return vt * np.arcsinh(net_doping / (2.0 * ni))


def equilibrium_carriers(potential, ni: float, vt: float):
    """Boltzmann equilibrium densities ``(n, p)`` for a potential [V].

    ``n = ni exp(V/Vt)``, ``p = ni exp(-V/Vt)``; the product is always
    ``ni^2`` (mass-action law), which the tests assert.
    """
    potential = np.asarray(potential, dtype=float)
    # Clip the exponent so pathological inputs degrade gracefully instead
    # of overflowing; 60 thermal voltages is far beyond silicon doping.
    arg = np.clip(potential / vt, -60.0, 60.0)
    n = ni * np.exp(arg)
    p = ni * np.exp(-arg)
    return n, p
