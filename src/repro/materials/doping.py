"""Doping profiles.

The paper's examples use a *uniformly distributed* doping profile whose
node values are then perturbed by the random-doping-fluctuation (RDF)
model (a 10 % multivariate-Gaussian perturbation with correlation length
eta = 0.5 um).  :class:`NodePerturbedDoping` is the deterministic carrier
of one such perturbed sample: the stochastic machinery in
:mod:`repro.variation.doping_variation` produces the per-node multipliers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MaterialError


class DopingProfile:
    """Net-doping field ``Nd(r) - Na(r)`` evaluated at node coordinates.

    Subclasses implement :meth:`net_doping`; the convention is that a
    positive value means donor-dominated (n-type) material.
    """

    def net_doping(self, coords: np.ndarray) -> np.ndarray:
        """Return net doping [1/m^3] for an ``(N, 3)`` coordinate array."""
        raise NotImplementedError

    def total_doping(self, coords: np.ndarray) -> np.ndarray:
        """Return total ionized doping ``Nd + Na`` (for mobility models).

        The default assumes single-species doping, i.e. ``|Nd - Na|``.
        """
        return np.abs(self.net_doping(coords))


@dataclass(frozen=True)
class UniformDoping(DopingProfile):
    """Spatially uniform net doping (the paper's nominal profile)."""

    net: float

    def net_doping(self, coords: np.ndarray) -> np.ndarray:
        coords = np.asarray(coords, dtype=float)
        if coords.ndim != 2 or coords.shape[1] != 3:
            raise MaterialError("coords must have shape (N, 3)")
        return np.full(coords.shape[0], self.net, dtype=float)


@dataclass(frozen=True)
class GaussianDoping(DopingProfile):
    """Gaussian implant profile: a peak decaying along one axis.

    ``N(r) = background + peak * exp(-((r_axis - center)/sigma)^2)``

    Useful for building junction examples that exercise the nonlinear
    Poisson solver away from flat-band conditions.
    """

    background: float
    peak: float
    axis: int
    center: float
    sigma: float

    def __post_init__(self) -> None:
        if self.axis not in (0, 1, 2):
            raise MaterialError(f"axis must be 0, 1 or 2, got {self.axis}")
        if self.sigma <= 0.0:
            raise MaterialError("sigma must be positive")

    def net_doping(self, coords: np.ndarray) -> np.ndarray:
        coords = np.asarray(coords, dtype=float)
        if coords.ndim != 2 or coords.shape[1] != 3:
            raise MaterialError("coords must have shape (N, 3)")
        x = coords[:, self.axis]
        arg = ((x - self.center) / self.sigma) ** 2
        return self.background + self.peak * np.exp(-arg)


class NodePerturbedDoping(DopingProfile):
    """A base profile multiplied by per-node factors (one RDF sample).

    Parameters
    ----------
    base:
        The nominal profile.
    node_ids:
        Flat node indices (into the structure's node array) that carry a
        perturbation.
    multipliers:
        Multiplicative factor per perturbed node, e.g. ``1 + xi`` with
        ``xi ~ N(0, 0.1^2)`` for the paper's 10 % RDF.
    num_nodes:
        Total number of nodes in the grid (for validation).
    """

    def __init__(self, base: DopingProfile, node_ids: np.ndarray,
                 multipliers: np.ndarray, num_nodes: int):
        node_ids = np.asarray(node_ids, dtype=int)
        multipliers = np.asarray(multipliers, dtype=float)
        if node_ids.ndim != 1 or multipliers.ndim != 1:
            raise MaterialError("node_ids and multipliers must be 1-D")
        if node_ids.shape != multipliers.shape:
            raise MaterialError(
                f"node_ids ({node_ids.shape}) and multipliers "
                f"({multipliers.shape}) must have the same length")
        if node_ids.size and (node_ids.min() < 0
                              or node_ids.max() >= num_nodes):
            raise MaterialError("node_ids out of range")
        if np.any(multipliers < 0.0):
            raise MaterialError(
                "doping multipliers must be non-negative; the RDF model "
                "should clip extreme samples before building the profile")
        self.base = base
        self.node_ids = node_ids
        self.multipliers = multipliers
        self.num_nodes = num_nodes

    def _factors(self, count: int) -> np.ndarray:
        factors = np.ones(count, dtype=float)
        factors[self.node_ids] = self.multipliers
        return factors

    def net_doping(self, coords: np.ndarray) -> np.ndarray:
        coords = np.asarray(coords, dtype=float)
        if coords.shape[0] != self.num_nodes:
            raise MaterialError(
                f"expected coords for all {self.num_nodes} nodes, "
                f"got {coords.shape[0]}")
        return self.base.net_doping(coords) * self._factors(coords.shape[0])

    def total_doping(self, coords: np.ndarray) -> np.ndarray:
        coords = np.asarray(coords, dtype=float)
        return self.base.total_doping(coords) * self._factors(coords.shape[0])
