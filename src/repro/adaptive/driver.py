"""Budgeted dimension-adaptive refinement loop (Gerstner-Griebel).

The fixed level-2 Smolyak grid spends ``2 d^2 + 4 d + 1`` solves no
matter how anisotropic the reduced variables are.  The adaptive driver
instead grows a downward-closed index set one index at a time, always
refining the direction with the largest surplus indicator, until the
global error estimate drops under ``tol`` or the solve budget runs
out.  Each accepted index opens a *wave* of admissible neighbors; the
wave's new collocation points are collected and handed to the
``solve_many`` hook in a single call when one is supplied (the
``workers`` stopping-control fans exactly that call over the
``analysis.parallel`` process pool — see
:class:`~repro.analysis.parallel.ParallelWaveEvaluator`), falling back
to a per-point loop in which every solve still rides the
multi-port/factorization-reuse paths inside ``evaluate_sample``.

A build can also be *warm-started* from a previous one: a
:class:`WarmStart` (typically recovered from a stored refinement
sidecar by :meth:`WarmStart.from_refinement`) seeds the multi-index
set with the source build's accepted indices instead of the bare root
index.  The seeded indices are evaluated in one batched wave, their
surpluses are compared against the source build's recorded indicators,
and when the measured *drift* keeps the transferred frontier error
under ``tol`` the build certifies immediately — no frontier
exploration at all.  See ``docs/ADAPTIVE.md`` for the exact semantics
and the honesty caveats of that certification.

Known limitation (inherent to the Gerstner-Griebel indicator): a
direction whose *every* effect is purely interactive — exactly zero
response along its own axis but a nonzero cross term — produces a zero
axis surplus, so the pair index that would reveal it never becomes
admissible before the tolerance is met.  Physical reduced variables
always carry an axis response (each one directly perturbs geometry or
doping), and a ``tol=0`` run with a ``max_level`` cap exhausts the
whole simplex and is immune.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import StochasticError
from repro.obs.trace import span
from repro.stochastic.hermite import HermiteBasis
from repro.stochastic.pce import PolynomialChaos
from repro.stochastic.sparse_grid import SparseGrid
from repro.adaptive.grid import IncrementalGrid
from repro.adaptive.indices import MultiIndexSet
from repro.adaptive.indices import combination_coefficients
from repro.adaptive.indices import is_downward_closed
from repro.adaptive.surplus import (
    adaptive_basis_indices,
    difference_quadrature,
    integral_scale,
    surplus_indicator,
    tensor_degree_caps,
)

#: Valid values of :attr:`AdaptiveConfig.basis`.
BASIS_MODES = ("order2", "adaptive")


@dataclass(frozen=True)
class AdaptiveConfig:
    """Stopping and execution controls of the adaptive refinement loop.

    The first three fields are the *identity* of the build: two builds
    with the same ``tol``/``max_solves``/``max_level`` produce the same
    surrogate — bitwise for cold builds, within ``tol`` when one of
    them was warm-certified from a seed — and therefore share a cache
    key.  ``workers`` is pure
    execution policy — it changes wall time, never a single bit of the
    result — and is deliberately excluded from :meth:`to_dict`'s
    default (cache-key) form.

    Parameters
    ----------
    tol : float, default 1e-4
        Relative tolerance on the global error estimate (the sum of
        active surplus indicators, each normalized by the running
        integral magnitude).  0 refines until the budget or the level
        cap exhausts the admissible indices.
    max_solves : int or None, default None
        Hard cap on deterministic solver evaluations (collocation
        points); ``None`` means unbounded.  Waves that would overshoot
        the cap are skipped, never truncated mid-tensor.
    max_level : int or None, default None
        Cap on the *total* level ``|l|`` of any accepted index
        (``max_level=2`` confines refinement to subsets of the fixed
        level-2 Smolyak simplex); ``None`` means uncapped.
    basis : {"order2", "adaptive"}, default "order2"
        Chaos truncation of the final fit.  ``"order2"`` keeps the
        paper's fixed quadratic basis (bitwise-unchanged results);
        ``"adaptive"`` lets the accepted index set drive the basis —
        every tensor rule contributes the terms it resolves without
        aliasing (:func:`~repro.adaptive.surplus.adaptive_basis_indices`),
        so ``max_level > 2`` buys representational accuracy, not just
        certification.  Part of the build identity (and cache key);
        the refinement *path* itself is basis-independent.
    workers : int or None, default None
        Fan each refinement wave's never-seen collocation points over
        this many worker processes (``None`` or 1 keeps the serial
        path).  Results are bitwise-identical regardless of the value;
        it never enters a spec cache key.
    """

    tol: float = 1e-4
    max_solves: int = None
    max_level: int = None
    basis: str = "order2"
    workers: int = None

    def __post_init__(self) -> None:
        tol = self.tol
        if not isinstance(tol, (int, float)) or not np.isfinite(tol) \
                or tol < 0:
            raise StochasticError(
                f"tol must be a finite non-negative number, got {tol!r}")
        if self.basis not in BASIS_MODES:
            raise StochasticError(
                f"basis must be one of {list(BASIS_MODES)}, "
                f"got {self.basis!r}")
        for name in ("max_solves", "max_level", "workers"):
            value = getattr(self, name)
            if value is None:
                continue
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise StochasticError(
                    f"{name} must be a positive integer or None, "
                    f"got {value!r}")

    # ------------------------------------------------------------------
    def to_dict(self, include_workers: bool = False) -> dict:
        """Fully-resolved wire form.

        Parameters
        ----------
        include_workers : bool, default False
            The default (identity) form participates in spec cache
            keys and therefore omits ``workers`` — the same surrogate
            is built regardless of core count.  Pass ``True`` for the
            execution form that round-trips the knob (what
            :meth:`~repro.serving.spec.ProblemSpec.resolved_reduction`
            carries to the build).

        Returns
        -------
        dict
            JSON-scalar mapping accepted back by :meth:`from_dict`.
        """
        data = {"tol": float(self.tol),
                "max_solves": self.max_solves,
                "max_level": self.max_level}
        if self.basis != "order2":
            # Identity-affecting, but omitted at the default so every
            # order-2 spec keeps the exact canonical form (and cache
            # key) it had before order-adaptive bases existed.
            data["basis"] = self.basis
        if include_workers:
            data["workers"] = self.workers
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "AdaptiveConfig":
        """Build a config from its (possibly sparse) dict form.

        Parameters
        ----------
        data : dict or AdaptiveConfig
            Any subset of ``tol``/``max_solves``/``max_level``/
            ``workers``; missing names take the defaults, int-valued
            floats are normalized.  A live config passes through.

        Returns
        -------
        AdaptiveConfig
        """
        if isinstance(data, AdaptiveConfig):
            return data
        if not isinstance(data, dict):
            raise StochasticError(
                f"adaptive config must be a mapping, "
                f"got {type(data).__name__}")
        unknown = set(data) - {"tol", "max_solves", "max_level",
                               "basis", "workers"}
        if unknown:
            raise StochasticError(
                f"unknown adaptive settings {sorted(unknown)}; "
                f"valid: ['basis', 'max_level', 'max_solves', 'tol', "
                f"'workers']")
        kwargs = {}
        for name in ("tol", "max_solves", "max_level", "workers"):
            if name in data and data[name] is not None:
                value = data[name]
                if name != "tol" and isinstance(value, float) \
                        and value.is_integer():
                    value = int(value)
                kwargs[name] = value
            elif name in data:
                kwargs[name] = None
        if data.get("basis") is not None:
            # A None basis means "the default", matching the omission
            # in to_dict.
            kwargs["basis"] = data["basis"]
        return cls(**kwargs)


@dataclass(frozen=True)
class WarmStart:
    """Seed for a refinement run, recovered from a previous build.

    Parameters
    ----------
    indices : tuple of tuple of int
        The source build's *accepted* (old) multi-indices, including
        the root.  They seed the new build's index set wholesale, so
        refinement starts from the source's explored interior instead
        of the bare root index.
    frontier_error : float
        The source build's final error estimate — the sum of its
        active frontier indicators, i.e. what certified its tolerance.
        Transferred to the new build scaled by the measured indicator
        drift; ``inf`` disables certification (the frontier is then
        re-explored and re-measured from scratch).
    indicators : dict
        ``{accepted index: indicator at acceptance}`` from the source
        build's trace.  The ratio of freshly measured indicators to
        these stored ones is the *drift* used to rescale
        ``frontier_error``.
    source : str, optional
        Provenance label (the source surrogate's cache key); recorded
        as ``warm_start_source`` in the refinement sidecar.
    """

    indices: tuple
    frontier_error: float
    indicators: dict = field(default_factory=dict)
    source: str = None

    @classmethod
    def from_refinement(cls, refinement: dict,
                        source: str = None) -> "WarmStart":
        """Recover a seed from a stored refinement sidecar.

        Parameters
        ----------
        refinement : dict
            A :meth:`AdaptiveResult.refinement_metadata` mapping (as
            persisted under ``refinement`` in the surrogate store).
            Older sidecars without the ``accepted`` field fall back to
            the trace, which records every accepted index in order.
        source : str, optional
            Provenance label, typically the stored entry's cache key.

        Returns
        -------
        WarmStart
        """
        if not isinstance(refinement, dict):
            raise StochasticError(
                f"refinement metadata must be a mapping, "
                f"got {type(refinement).__name__}")
        trace = refinement.get("trace") or []
        accepted = refinement.get("accepted")
        if accepted is None:
            accepted = [entry["index"] for entry in trace]
        indices = tuple(sorted({tuple(int(lv) for lv in index)
                                for index in accepted}))
        if not indices:
            raise StochasticError(
                "refinement metadata carries no accepted indices to "
                "warm-start from")
        # Prefer the final-scale accepted indicators (present since
        # they were introduced, and carried even by warm-certified
        # builds whose trace is empty); fall back to the acceptance
        # trace for older sidecars.
        pairs = refinement.get("accepted_indicators")
        if pairs:
            indicators = {tuple(int(lv) for lv in index):
                          float(indicator)
                          for index, indicator in pairs}
        else:
            indicators = {tuple(int(lv) for lv in entry["index"]):
                          float(entry["indicator"])
                          for entry in trace}
        error = refinement.get("error_estimate")
        frontier_error = float(error) if error is not None \
            else float("inf")
        return cls(indices=indices, frontier_error=frontier_error,
                   indicators=indicators, source=source)

    def uncertified(self) -> "WarmStart":
        """A copy that can seed but never certify.

        ``frontier_error`` is forced to ``inf``, so the driver adopts
        the seeded interior wholesale but always re-opens and
        re-measures the frontier instead of transferring the source's
        tolerance certification.  The serving pipeline applies this to
        tol-relaxed seeds: the source certified a *different*
        tolerance than this build must meet, so only its explored
        index set — not its stopping evidence — carries over.
        """
        return replace(self, frontier_error=float("inf"))


@dataclass
class AdaptiveResult:
    """Adaptive build output; duck-types
    :class:`~repro.stochastic.sscm.SSCMResult` (``pce``, ``num_runs``,
    ``wall_time``, ``grid``, ``mean``, ``std``) so the analysis and
    serving layers treat both uniformly, and adds the refinement
    provenance: the accepted index set, the per-acceptance convergence
    trace and the final error estimate.
    """

    pce: PolynomialChaos
    num_runs: int
    wall_time: float
    grid: SparseGrid
    config: AdaptiveConfig
    indices: list = field(default_factory=list)
    trace: list = field(default_factory=list)
    error_estimate: float = 0.0
    termination: str = "tol"
    accepted: list = field(default_factory=list)
    accepted_indicators: list = field(default_factory=list)
    warm: dict = None

    @property
    def mean(self) -> np.ndarray:
        return self.pce.mean

    @property
    def std(self) -> np.ndarray:
        return self.pce.std

    @property
    def output_names(self):
        return self.pce.output_names

    @property
    def converged(self) -> bool:
        """Did the error estimate actually reach the tolerance?"""
        return self.termination in ("tol", "exhausted", "warm")

    def refinement_metadata(self) -> dict:
        """JSON-serializable provenance for the surrogate store.

        Returns
        -------
        dict
            The stopping config (identity form — independent of the
            worker count), the full and accepted index sets, the
            per-acceptance trace, the error estimate and termination
            reason, the solve count, the combined-quadrature grid size
            with its zero-weight point count (grid-efficiency
            bookkeeping: points that were solved but cancelled out of
            the final rule), and the warm-start provenance
            (``warm_start_source`` is the source build's cache key
            when a warm start actually seeded this build, else
            ``None``).
        """
        weights = np.asarray(self.grid.weights)
        warm = dict(self.warm) if self.warm else None
        return {
            "config": self.config.to_dict(),
            "indices": [list(index) for index in self.indices],
            "accepted": [list(index) for index in self.accepted],
            "accepted_indicators": [
                [list(index), float(indicator)]
                for index, indicator in self.accepted_indicators],
            "trace": list(self.trace),
            "error_estimate": float(self.error_estimate),
            "termination": self.termination,
            "num_solves": int(self.num_runs),
            "grid_points": int(weights.size),
            "zero_weight_points": int(np.count_nonzero(weights == 0.0)),
            "warm_start": warm,
            "warm_start_source": (warm.get("source")
                                  if warm and warm.get("used")
                                  else None),
        }


def combination_projection(grid: IncrementalGrid, values: np.ndarray,
                           indices, basis: HermiteBasis) -> np.ndarray:
    """Aliasing-free chaos coefficients from a partial index set.

    A single global weighted projection over an *incomplete* sparse
    grid aliases internally: basis pairs the combined rule does not
    integrate orthogonally contaminate each other's coefficients (on an
    axes-only grid, ``He_2`` of an unrefined direction absorbs the
    curvature of every refined one).  The cure, after Conrad &
    Marzouk's adaptive pseudospectral construction, is to project *per
    tensor rule* onto only the basis terms that rule resolves without
    aliasing (1-D degree < rule size) and sum with the combination
    coefficients; for the complete level-2 simplex this reproduces the
    classic Smolyak projection exactly.

    The same per-tensor caps serve any basis: the paper's fixed order-2
    truncation, or the order-adaptive basis
    (:func:`~repro.adaptive.surplus.adaptive_basis_indices`) whose
    terms are by construction each resolved by at least one member
    rule.

    Returns the ``(basis.size, outputs)`` coefficient matrix.
    """
    design_all = basis.evaluate(grid.points())
    coefficients = np.zeros((basis.size, values.shape[1]))
    for index, coeff in combination_coefficients(indices).items():
        rows, weights = grid.tensor_rows(index)
        caps = tensor_degree_caps(index)
        columns = np.array([
            k for k, alpha in enumerate(basis.indices)
            if all(a <= cap for a, cap in zip(alpha, caps))])
        design = design_all[np.ix_(rows, columns)]
        raw = design.T @ (weights[:, None] * values[rows])
        coefficients[columns] += coeff * (
            raw / basis.norms_squared[columns, None])
    return coefficients


def _warm_seeds(warm_start: WarmStart, dim: int,
                config: AdaptiveConfig, grid: IncrementalGrid):
    """Validate a warm-start seed against this build's configuration.

    Returns ``(seeds, None)`` — the non-root accepted indices, level
    sorted — or ``(None, reason)`` when the seed cannot be applied and
    the build must fall back to a cold start: dimension mismatch, a
    non-downward-closed stored set, or a seed whose (conservatively
    estimated) point cost would blow the solve budget.
    """
    root = (0,) * dim
    seeds = set()
    for index in warm_start.indices:
        index = tuple(int(lv) for lv in index)
        if len(index) != dim or any(lv < 0 for lv in index):
            return None, (f"stored index {index} does not fit "
                          f"dim {dim}")
        if index == root:
            continue
        if config.max_level is not None \
                and sum(index) > config.max_level:
            # The level cap keeps downward closure: dropping every
            # index above a total level never orphans a survivor.
            continue
        seeds.add(index)
    seeds = sorted(seeds, key=lambda ix: (sum(ix), ix))
    if not seeds:
        # Root-only source (it certified at its first frontier), or
        # the level cap filtered everything: nothing to seed, and a
        # "warm" build would cost exactly a cold one — report it as
        # unused rather than attribute nonexistent savings.
        return None, ("source accepted only the root index (or the "
                      "level cap filtered every seed)")
    if not is_downward_closed([root] + seeds):
        return None, "stored accepted set is not downward-closed"
    if config.max_solves is not None:
        planned = grid.num_points
        for index in seeds:
            planned += grid.new_points(index).shape[0]
        # Conservative: per-index costs are counted before any seed is
        # registered, so shared points are double-counted.  A false
        # negative only means a cold start that respects the budget.
        if planned > config.max_solves:
            return None, (f"seed set needs ~{planned} solves, over "
                          f"max_solves={config.max_solves}")
    return seeds, None


def _warm_drift(warm_start: WarmStart, seeds, surpluses,
                scale) -> float:
    """Measured-vs-stored indicator ratio over the seeded indices.

    Sums (rather than averages ratios) so large indicators dominate
    and near-zero stored indicators cannot blow the estimate up.
    Returns ``None`` when no seeded index has a positive stored
    indicator — certification is then impossible.
    """
    stored_sum = 0.0
    measured_sum = 0.0
    for index in seeds:
        stored = warm_start.indicators.get(index)
        if stored is None:
            continue
        stored_sum += stored
        measured_sum += surplus_indicator(surpluses[index], scale)
    if stored_sum <= 0.0:
        return None
    return measured_sum / stored_sum


def run_adaptive_sscm(solve_fn, dim: int, config: AdaptiveConfig = None,
                      output_names=None, order: int = 2,
                      solve_many=None, progress=None,
                      warm_start: WarmStart = None) -> AdaptiveResult:
    """Build the quadratic chaos by dimension-adaptive collocation.

    Parameters
    ----------
    solve_fn:
        Callable ``zeta (dim,) -> QoI vector`` (one coupled solve).
    dim:
        Number of reduced variables.
    config:
        Stopping controls; defaults to :class:`AdaptiveConfig`.
        ``config.workers`` is *not* acted on here — pass a parallel
        ``solve_many`` (e.g. a
        :class:`~repro.analysis.parallel.ParallelWaveEvaluator`) to
        actually fan waves out; the runner wires the two together.
    output_names:
        QoI component labels.
    order:
        Chaos order of the fitted expansion (2, as in the paper).
    solve_many:
        Optional batched evaluator ``(n, dim) points -> (n, outputs)``;
        each refinement wave goes through it in one call.  Defaults to
        a row loop over ``solve_fn``.
    progress:
        Optional callable ``(solves_done, max_solves or -1)`` invoked
        after every evaluated wave.
    warm_start:
        Optional :class:`WarmStart` seeding the index set with a
        previous build's accepted indices.  When the seeded surpluses
        drift little enough that the transferred frontier error stays
        under ``tol``, the build certifies immediately
        (``termination == "warm"``) at strictly fewer solves than any
        cold build that must evaluate its frontier; otherwise the
        frontier is re-opened and refinement continues normally.  An
        inapplicable seed (wrong dimension, budget overflow) degrades
        to a cold start and is recorded as such in the metadata.
    """
    if dim < 1:
        raise StochasticError(f"dim must be >= 1, got {dim}")
    config = config or AdaptiveConfig()
    grid = IncrementalGrid(dim)
    index_set = MultiIndexSet(dim)
    values_rows = []
    trace = []
    start = time.perf_counter()

    def evaluate_wave(points: np.ndarray) -> None:
        if points.shape[0] == 0:
            return
        with span("wave", points=int(points.shape[0])):
            if solve_many is not None:
                block = np.asarray(solve_many(points), dtype=float)
                block = np.atleast_2d(block)
                if block.shape[0] != points.shape[0]:
                    raise StochasticError(
                        f"solve_many returned {block.shape[0]} rows "
                        f"for {points.shape[0]} points")
                values_rows.extend(block)
            else:
                for point in points:
                    values_rows.append(np.atleast_1d(
                        np.asarray(solve_fn(point), dtype=float)))
        if progress is not None:
            progress(len(values_rows), config.max_solves or -1)

    # Root index: the nominal collocation point.
    root = (0,) * dim
    evaluate_wave(grid.register(root))
    values = np.vstack(values_rows)
    pivot = values[0].copy()

    def augmented(block: np.ndarray) -> np.ndarray:
        # Indicators watch [f, (f - f(0))^2]: the mean alone is blind
        # to an index's effect on the variance (for a quadratic QoI
        # every cross index has *zero* mean surplus), while the second
        # moment sees exactly the terms the chaos variance needs.
        # Centering at the nominal value keeps its scale near the
        # *variance*, not mean^2 — essential when std << |mean| (the
        # paper's QoIs), or the tolerance would be met long before the
        # std converged.
        deviation = block - pivot
        return np.hstack([block, deviation * deviation])

    watched = augmented(values)
    estimate = difference_quadrature(grid, watched, root)
    surpluses = {root: estimate}

    def rescale_active() -> None:
        # Re-normalize every active indicator against the *current*
        # integral scale: the variance scale in particular starts near
        # zero and only settles as refinement accumulates, so
        # indicators frozen at activation time would be stale.
        scale = integral_scale(estimate)
        for active_index in index_set.active:
            index_set.active[active_index] = surplus_indicator(
                surpluses[active_index], scale)

    def expand_wave(candidates) -> bool:
        # One wave: every admissible candidate under the level cap and
        # the solve budget, evaluated in a single batched call (the
        # parallel seam), its surpluses activated one by one.  Returns
        # whether the budget clipped the wave.
        nonlocal values, watched, estimate
        wave, budget_hit = [], False
        planned = grid.num_points
        for candidate in candidates:
            if config.max_level is not None \
                    and sum(candidate) > config.max_level:
                continue
            cost = grid.new_points(candidate).shape[0]
            if config.max_solves is not None \
                    and planned + cost > config.max_solves:
                budget_hit = True
                continue
            planned += cost
            wave.append(candidate)
        if wave:
            evaluate_wave(np.vstack(
                [grid.register(candidate) for candidate in wave]))
            values = np.vstack(values_rows)
            watched = augmented(values)
        for candidate in wave:
            surplus = difference_quadrature(grid, watched, candidate)
            estimate = estimate + surplus
            surpluses[candidate] = surplus
            index_set.activate(candidate,
                               surplus_indicator(
                                   surplus, integral_scale(estimate)))
        return budget_hit

    termination = None
    warm_error = 0.0
    warm_info = None
    seeds = None
    if warm_start is not None:
        seeds, reason = _warm_seeds(warm_start, dim, config, grid)
        if seeds is None:
            warm_info = {"source": warm_start.source, "used": False,
                         "reason": reason}

    if seeds is not None:
        # Warm start: adopt the source build's accepted set wholesale.
        # All never-seen points of the seeded indices go out in ONE
        # batched wave (the parallel path digests it whole), then the
        # surpluses are re-measured on *this* problem in level order.
        index_set.old.add(root)
        new_blocks = [grid.register(index) for index in seeds]
        new_blocks = [block for block in new_blocks if block.shape[0]]
        if new_blocks:
            evaluate_wave(np.vstack(new_blocks))
            values = np.vstack(values_rows)
            watched = augmented(values)
        for index in seeds:
            surplus = difference_quadrature(grid, watched, index)
            estimate = estimate + surplus
            surpluses[index] = surplus
            index_set.old.add(index)
        drift = _warm_drift(warm_start, seeds, surpluses,
                            integral_scale(estimate))
        certified = (drift is not None and config.tol > 0
                     and np.isfinite(warm_start.frontier_error)
                     and warm_start.frontier_error * drift
                     <= config.tol)
        warm_info = {"source": warm_start.source, "used": True,
                     "seeded_indices": len(seeds) + 1,
                     "drift": None if drift is None else float(drift),
                     "certified": bool(certified)}
        if certified:
            # The source frontier certified its own tolerance and the
            # seeded interior only moved by `drift`: the transferred
            # frontier error still clears tol, so the frontier is not
            # re-evaluated at all — that skipped evaluation is the
            # entire warm-start saving.
            termination = "warm"
            warm_error = warm_start.frontier_error * drift
        else:
            # Drift too large (or unmeasurable): re-open the frontier
            # around the seeded interior and drop back into the
            # standard refinement loop below.
            admissible = sorted(
                {forward for member in index_set.old
                 for forward in index_set.forward_neighbors(member)
                 if index_set.is_admissible(forward)})
            if expand_wave(admissible):
                rescale_active()
                termination = ("tol"
                               if index_set.error_estimate()
                               <= config.tol
                               else "max_solves")
    else:
        index_set.activate(root, surplus_indicator(
            estimate, integral_scale(estimate)))

    step = 0
    while termination is None and index_set.active:
        rescale_active()
        if index_set.error_estimate() <= config.tol and index_set.old:
            termination = "tol"
            break
        index, indicator = index_set.accept_best()
        step += 1
        budget_hit = expand_wave(index_set.candidates(index))
        trace.append({
            "step": step,
            "index": list(index),
            "indicator": float(indicator),
            "num_solves": int(grid.num_points),
            "active": len(index_set.active),
            "error": float(index_set.error_estimate()),
        })
        if budget_hit:
            # Stop as soon as the budget clips a wave: accepting
            # further indices without expanding their neighborhoods
            # would drain the active set and launder the error away.
            rescale_active()
            termination = ("tol"
                           if index_set.error_estimate() <= config.tol
                           else "max_solves")
            break
    if termination is None:
        # Active set drained: the whole admissible space (under the
        # level cap) has been accepted.
        termination = "exhausted"

    indices = index_set.indices()
    final_grid = grid.combined_quadrature(indices)
    with span("fit", basis=config.basis, tensors=len(indices)):
        if config.basis == "adaptive":
            # Let the accepted index set drive the truncation: every
            # term some member rule resolves without aliasing is
            # retained, so refining a direction past level 2 grows its
            # polynomial order along with its grid.
            basis = HermiteBasis(
                dim, indices=adaptive_basis_indices(indices))
        else:
            basis = HermiteBasis(dim, order=order)
        pce = PolynomialChaos(basis,
                              combination_projection(grid, values,
                                                     indices, basis),
                              output_names=output_names)
    wall = time.perf_counter() - start
    final_error = (warm_error if termination == "warm"
                   else index_set.error_estimate())
    final_scale = integral_scale(estimate)
    accepted = sorted(index_set.old)
    return AdaptiveResult(
        pce=pce, num_runs=int(grid.num_points), wall_time=wall,
        grid=final_grid, config=config, indices=indices, trace=trace,
        error_estimate=float(final_error),
        termination=termination,
        accepted=accepted,
        accepted_indicators=[
            (index, surplus_indicator(surpluses[index], final_scale))
            for index in accepted],
        warm=warm_info)
