"""Budgeted dimension-adaptive refinement loop (Gerstner-Griebel).

The fixed level-2 Smolyak grid spends ``2 d^2 + 4 d + 1`` solves no
matter how anisotropic the reduced variables are.  The adaptive driver
instead grows a downward-closed index set one index at a time, always
refining the direction with the largest surplus indicator, until the
global error estimate drops under ``tol`` or the solve budget runs
out.  Each accepted index opens a *wave* of admissible neighbors; the
wave's new collocation points are collected and handed to the
``solve_many`` hook in a single call when one is supplied (a parallel
map slots in there — see ROADMAP), falling back to a per-point loop in
which every solve still rides the multi-port/factorization-reuse
paths inside ``evaluate_sample``.

Known limitation (inherent to the Gerstner-Griebel indicator): a
direction whose *every* effect is purely interactive — exactly zero
response along its own axis but a nonzero cross term — produces a zero
axis surplus, so the pair index that would reveal it never becomes
admissible before the tolerance is met.  Physical reduced variables
always carry an axis response (each one directly perturbs geometry or
doping), and a ``tol=0`` run with a ``max_level`` cap exhausts the
whole simplex and is immune.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import StochasticError
from repro.stochastic.hermite import HermiteBasis
from repro.stochastic.pce import QuadraticPCE
from repro.stochastic.sparse_grid import SparseGrid
from repro.adaptive.grid import IncrementalGrid
from repro.adaptive.indices import MultiIndexSet
from repro.adaptive.indices import combination_coefficients
from repro.adaptive.surplus import (
    difference_quadrature,
    integral_scale,
    surplus_indicator,
)
from repro.stochastic.gauss_hermite import rule_size_for_level


@dataclass(frozen=True)
class AdaptiveConfig:
    """Stopping controls of the adaptive refinement loop.

    Parameters
    ----------
    tol:
        Relative tolerance on the global error estimate (the sum of
        active surplus indicators, each normalized by the running
        integral magnitude).  0 refines until the budget or the level
        cap exhausts the admissible indices.
    max_solves:
        Hard cap on deterministic solver evaluations (collocation
        points); ``None`` means unbounded.  Waves that would overshoot
        the cap are skipped, never truncated mid-tensor.
    max_level:
        Cap on the *total* level ``|l|`` of any accepted index
        (``max_level=2`` confines refinement to subsets of the fixed
        level-2 Smolyak simplex); ``None`` means uncapped.
    """

    tol: float = 1e-4
    max_solves: int = None
    max_level: int = None

    def __post_init__(self) -> None:
        tol = self.tol
        if not isinstance(tol, (int, float)) or not np.isfinite(tol) \
                or tol < 0:
            raise StochasticError(
                f"tol must be a finite non-negative number, got {tol!r}")
        for name in ("max_solves", "max_level"):
            value = getattr(self, name)
            if value is None:
                continue
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise StochasticError(
                    f"{name} must be a positive integer or None, "
                    f"got {value!r}")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Fully-resolved wire form (participates in spec cache keys)."""
        return {"tol": float(self.tol),
                "max_solves": self.max_solves,
                "max_level": self.max_level}

    @classmethod
    def from_dict(cls, data: dict) -> "AdaptiveConfig":
        if isinstance(data, AdaptiveConfig):
            return data
        if not isinstance(data, dict):
            raise StochasticError(
                f"adaptive config must be a mapping, "
                f"got {type(data).__name__}")
        unknown = set(data) - {"tol", "max_solves", "max_level"}
        if unknown:
            raise StochasticError(
                f"unknown adaptive settings {sorted(unknown)}; "
                f"valid: ['max_level', 'max_solves', 'tol']")
        kwargs = {}
        for name in ("tol", "max_solves", "max_level"):
            if name in data and data[name] is not None:
                value = data[name]
                if name != "tol" and isinstance(value, float) \
                        and value.is_integer():
                    value = int(value)
                kwargs[name] = value
            elif name in data:
                kwargs[name] = None
        return cls(**kwargs)


@dataclass
class AdaptiveResult:
    """Adaptive build output; duck-types
    :class:`~repro.stochastic.sscm.SSCMResult` (``pce``, ``num_runs``,
    ``wall_time``, ``grid``, ``mean``, ``std``) so the analysis and
    serving layers treat both uniformly, and adds the refinement
    provenance: the accepted index set, the per-acceptance convergence
    trace and the final error estimate.
    """

    pce: QuadraticPCE
    num_runs: int
    wall_time: float
    grid: SparseGrid
    config: AdaptiveConfig
    indices: list = field(default_factory=list)
    trace: list = field(default_factory=list)
    error_estimate: float = 0.0
    termination: str = "tol"

    @property
    def mean(self) -> np.ndarray:
        return self.pce.mean

    @property
    def std(self) -> np.ndarray:
        return self.pce.std

    @property
    def output_names(self):
        return self.pce.output_names

    @property
    def converged(self) -> bool:
        """Did the error estimate actually reach the tolerance?"""
        return self.termination in ("tol", "exhausted")

    def refinement_metadata(self) -> dict:
        """JSON-serializable provenance for the surrogate store."""
        return {
            "config": self.config.to_dict(),
            "indices": [list(index) for index in self.indices],
            "trace": list(self.trace),
            "error_estimate": float(self.error_estimate),
            "termination": self.termination,
            "num_solves": int(self.num_runs),
        }


def combination_projection(grid: IncrementalGrid, values: np.ndarray,
                           indices, basis: HermiteBasis) -> np.ndarray:
    """Aliasing-free chaos coefficients from a partial index set.

    A single global weighted projection over an *incomplete* sparse
    grid aliases internally: basis pairs the combined rule does not
    integrate orthogonally contaminate each other's coefficients (on an
    axes-only grid, ``He_2`` of an unrefined direction absorbs the
    curvature of every refined one).  The cure, after Conrad &
    Marzouk's adaptive pseudospectral construction, is to project *per
    tensor rule* onto only the basis terms that rule resolves without
    aliasing (1-D degree < rule size) and sum with the combination
    coefficients; for the complete level-2 simplex this reproduces the
    classic Smolyak projection exactly.

    Returns the ``(basis.size, outputs)`` coefficient matrix.
    """
    design_all = basis.evaluate(grid.points())
    coefficients = np.zeros((basis.size, values.shape[1]))
    for index, coeff in combination_coefficients(indices).items():
        rows, weights = grid.tensor_rows(index)
        caps = [rule_size_for_level(level) - 1 for level in index]
        columns = np.array([
            k for k, alpha in enumerate(basis.indices)
            if all(a <= cap for a, cap in zip(alpha, caps))])
        design = design_all[np.ix_(rows, columns)]
        raw = design.T @ (weights[:, None] * values[rows])
        coefficients[columns] += coeff * (
            raw / basis.norms_squared[columns, None])
    return coefficients


def run_adaptive_sscm(solve_fn, dim: int, config: AdaptiveConfig = None,
                      output_names=None, order: int = 2,
                      solve_many=None, progress=None) -> AdaptiveResult:
    """Build the quadratic chaos by dimension-adaptive collocation.

    Parameters
    ----------
    solve_fn:
        Callable ``zeta (dim,) -> QoI vector`` (one coupled solve).
    dim:
        Number of reduced variables.
    config:
        Stopping controls; defaults to :class:`AdaptiveConfig`.
    output_names:
        QoI component labels.
    order:
        Chaos order of the fitted expansion (2, as in the paper).
    solve_many:
        Optional batched evaluator ``(n, dim) points -> (n, outputs)``;
        each refinement wave goes through it in one call.  Defaults to
        a row loop over ``solve_fn``.
    progress:
        Optional callable ``(solves_done, max_solves or -1)`` invoked
        after every evaluated wave.
    """
    if dim < 1:
        raise StochasticError(f"dim must be >= 1, got {dim}")
    config = config or AdaptiveConfig()
    grid = IncrementalGrid(dim)
    index_set = MultiIndexSet(dim)
    values_rows = []
    trace = []
    start = time.perf_counter()

    def evaluate_wave(points: np.ndarray) -> None:
        if points.shape[0] == 0:
            return
        if solve_many is not None:
            block = np.asarray(solve_many(points), dtype=float)
            block = np.atleast_2d(block)
            if block.shape[0] != points.shape[0]:
                raise StochasticError(
                    f"solve_many returned {block.shape[0]} rows for "
                    f"{points.shape[0]} points")
            values_rows.extend(block)
        else:
            for point in points:
                values_rows.append(np.atleast_1d(
                    np.asarray(solve_fn(point), dtype=float)))
        if progress is not None:
            progress(len(values_rows), config.max_solves or -1)

    # Root index: the nominal collocation point.
    root = (0,) * dim
    evaluate_wave(grid.register(root))
    values = np.vstack(values_rows)
    pivot = values[0].copy()

    def augmented(block: np.ndarray) -> np.ndarray:
        # Indicators watch [f, (f - f(0))^2]: the mean alone is blind
        # to an index's effect on the variance (for a quadratic QoI
        # every cross index has *zero* mean surplus), while the second
        # moment sees exactly the terms the chaos variance needs.
        # Centering at the nominal value keeps its scale near the
        # *variance*, not mean^2 — essential when std << |mean| (the
        # paper's QoIs), or the tolerance would be met long before the
        # std converged.
        deviation = block - pivot
        return np.hstack([block, deviation * deviation])

    watched = augmented(values)
    estimate = difference_quadrature(grid, watched, root)
    surpluses = {root: estimate}
    index_set.activate(root, surplus_indicator(
        estimate, integral_scale(estimate)))

    def rescale_active() -> None:
        # Re-normalize every active indicator against the *current*
        # integral scale: the variance scale in particular starts near
        # zero and only settles as refinement accumulates, so
        # indicators frozen at activation time would be stale.
        scale = integral_scale(estimate)
        for active_index in index_set.active:
            index_set.active[active_index] = surplus_indicator(
                surpluses[active_index], scale)

    termination = None
    step = 0
    while index_set.active:
        rescale_active()
        if index_set.error_estimate() <= config.tol and index_set.old:
            termination = "tol"
            break
        index, indicator = index_set.accept_best()
        step += 1

        # One wave: every admissible neighbor of the accepted index
        # under the level cap and the solve budget, evaluated in a
        # single batched call.
        wave, budget_hit = [], False
        planned = grid.num_points
        for candidate in index_set.candidates(index):
            if config.max_level is not None \
                    and sum(candidate) > config.max_level:
                continue
            cost = grid.new_points(candidate).shape[0]
            if config.max_solves is not None \
                    and planned + cost > config.max_solves:
                budget_hit = True
                continue
            planned += cost
            wave.append(candidate)
        if wave:
            evaluate_wave(np.vstack(
                [grid.register(candidate) for candidate in wave]))
            values = np.vstack(values_rows)
            watched = augmented(values)
        for candidate in wave:
            surplus = difference_quadrature(grid, watched, candidate)
            estimate = estimate + surplus
            surpluses[candidate] = surplus
            index_set.activate(candidate,
                               surplus_indicator(
                                   surplus, integral_scale(estimate)))
        trace.append({
            "step": step,
            "index": list(index),
            "indicator": float(indicator),
            "num_solves": int(grid.num_points),
            "active": len(index_set.active),
            "error": float(index_set.error_estimate()),
        })
        if budget_hit:
            # Stop as soon as the budget clips a wave: accepting
            # further indices without expanding their neighborhoods
            # would drain the active set and launder the error away.
            rescale_active()
            termination = ("tol"
                           if index_set.error_estimate() <= config.tol
                           else "max_solves")
            break
    if termination is None:
        # Active set drained: the whole admissible space (under the
        # level cap) has been accepted.
        termination = "exhausted"

    indices = index_set.indices()
    final_grid = grid.combined_quadrature(indices)
    basis = HermiteBasis(dim, order=order)
    pce = QuadraticPCE(basis,
                       combination_projection(grid, values, indices,
                                              basis),
                       output_names=output_names)
    wall = time.perf_counter() - start
    return AdaptiveResult(
        pce=pce, num_runs=int(grid.num_points), wall_time=wall,
        grid=final_grid, config=config, indices=indices, trace=trace,
        error_estimate=float(index_set.error_estimate()),
        termination=termination)
