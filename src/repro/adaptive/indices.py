"""Admissible multi-index sets for dimension-adaptive sparse grids.

A Smolyak-type grid is defined by a *downward-closed* (admissible) set
of level multi-indices: whenever ``l`` is in the set, so is every
``l - e_i`` with ``l_i > 0``.  The Gerstner-Griebel refinement loop
maintains that invariant incrementally by partitioning the set into
*old* indices (accepted, interior) and *active* indices (the frontier,
each carrying an error indicator): an index may only enter the active
set once all of its backward neighbors are old.

The combination technique turns any downward-closed set ``S`` into a
quadrature rule: ``Q_S = sum_{l in S} c(l) Q_l`` with
``c(l) = sum_{z in {0,1}^d, l+z in S} (-1)^{|z|}``.
"""

from __future__ import annotations

from itertools import combinations

from repro.errors import StochasticError


class MultiIndexSet:
    """Old/active partition of a downward-closed level-index set.

    Parameters
    ----------
    dim:
        Number of stochastic directions; every index is a ``dim``-tuple
        of non-negative integer levels.
    """

    def __init__(self, dim: int):
        if dim < 1:
            raise StochasticError(f"dim must be >= 1, got {dim}")
        self.dim = dim
        self.old = set()
        self.active = {}  # index -> error indicator (float)

    # ------------------------------------------------------------------
    def __contains__(self, index) -> bool:
        return index in self.old or index in self.active

    def __len__(self) -> int:
        return len(self.old) + len(self.active)

    def indices(self) -> list:
        """All indices (old + active), sorted for determinism."""
        return sorted(self.old) + sorted(self.active)

    def _check(self, index) -> tuple:
        index = tuple(int(lv) for lv in index)
        if len(index) != self.dim or any(lv < 0 for lv in index):
            raise StochasticError(
                f"index must be {self.dim} non-negative levels, "
                f"got {index}")
        return index

    # ------------------------------------------------------------------
    def backward_neighbors(self, index) -> list:
        index = self._check(index)
        return [index[:axis] + (index[axis] - 1,) + index[axis + 1:]
                for axis in range(self.dim) if index[axis] > 0]

    def forward_neighbors(self, index) -> list:
        index = self._check(index)
        return [index[:axis] + (index[axis] + 1,) + index[axis + 1:]
                for axis in range(self.dim)]

    def is_admissible(self, index) -> bool:
        """May ``index`` enter the active set now?

        True when it is not already present and every backward neighbor
        has been accepted (is old) — adding it keeps the whole set
        downward-closed.
        """
        index = self._check(index)
        if index in self:
            return False
        return all(back in self.old
                   for back in self.backward_neighbors(index))

    # ------------------------------------------------------------------
    def activate(self, index, indicator: float) -> None:
        """Add an admissible index to the frontier with its indicator."""
        index = self._check(index)
        if not self.is_admissible(index):
            raise StochasticError(
                f"index {index} is not admissible "
                f"(already present or missing backward neighbors)")
        self.active[index] = float(indicator)

    def accept_best(self) -> tuple:
        """Move the largest-indicator active index to the old set.

        Ties break on the smaller index (deterministic refinement).
        Returns ``(index, indicator)``.
        """
        if not self.active:
            raise StochasticError("no active indices to accept")
        index = min(self.active,
                    key=lambda ix: (-self.active[ix], ix))
        indicator = self.active.pop(index)
        self.old.add(index)
        return index, indicator

    def candidates(self, index) -> list:
        """Admissible forward neighbors of a just-accepted index."""
        return [fwd for fwd in self.forward_neighbors(index)
                if self.is_admissible(fwd)]

    def error_estimate(self) -> float:
        """Gerstner-Griebel global estimate: sum of active indicators."""
        return float(sum(self.active.values()))


def is_downward_closed(indices) -> bool:
    """True when every backward neighbor of every index is present."""
    index_set = {tuple(ix) for ix in indices}
    for index in index_set:
        for axis, lv in enumerate(index):
            if lv > 0:
                back = index[:axis] + (lv - 1,) + index[axis + 1:]
                if back not in index_set:
                    return False
    return True


def combination_coefficients(indices) -> dict:
    """Combination-technique coefficients of a downward-closed set.

    ``c(l) = sum over binary offsets z with l+z in the set of
    (-1)^|z|``; indices whose coefficient is zero are omitted from the
    returned mapping.

    Computed by scattering instead of gathering: each member ``m``
    contributes ``(-1)^|T|`` to ``c(m - 1_T)`` for every subset ``T``
    of its support (all of which lie in the set by downward
    closure), so the cost is ``2^|support|`` per member — indices are
    sparse (a few active directions), never ``2^dim``.
    """
    index_set = {tuple(int(lv) for lv in ix) for ix in indices}
    if not index_set:
        raise StochasticError("index set is empty")
    if not is_downward_closed(index_set):
        raise StochasticError("index set is not downward-closed")
    coefficients = {}
    for member in index_set:
        support = [axis for axis, lv in enumerate(member) if lv > 0]
        for count in range(len(support) + 1):
            sign = (-1) ** count
            for axes in combinations(support, count):
                lower = list(member)
                for axis in axes:
                    lower[axis] -= 1
                lower = tuple(lower)
                coefficients[lower] = coefficients.get(lower, 0) + sign
    return {index: coeff for index, coeff in coefficients.items()
            if coeff != 0}
