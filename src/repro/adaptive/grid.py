"""Incremental collocation grids over the shared node hierarchy.

An :class:`IncrementalGrid` owns the growing set of collocation points
of an adaptive refinement run.  Every level multi-index names a full
tensor Gauss-Hermite rule (1-D sizes from
:func:`~repro.stochastic.gauss_hermite.rule_size_for_level`); points
are identified by tuples of exact 1-D node ids from one shared
:class:`~repro.stochastic.gauss_hermite.NodeTable`, so registering a
new index yields exactly the points no earlier index produced — the
solver is never called twice for a coincident node.

Quadrature over any downward-closed index set comes from the
combination technique: per-point weights are the coefficient-scaled
sums of the member tensor weights, which for the complete level-``L``
set reproduce :func:`~repro.stochastic.sparse_grid.smolyak_sparse_grid`
exactly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StochasticError
from repro.stochastic.gauss_hermite import NodeTable
from repro.stochastic.sparse_grid import SparseGrid
from repro.adaptive.indices import combination_coefficients


class IncrementalGrid:
    """Growing point set shared by all registered tensor indices."""

    def __init__(self, dim: int, table: NodeTable = None):
        if dim < 1:
            raise StochasticError(f"dim must be >= 1, got {dim}")
        self.dim = dim
        self.table = table if table is not None else NodeTable()
        self._row_by_key = {}
        self._points = []
        self._tensor = {}  # index -> (rows array, tensor weights array)

    @property
    def num_points(self) -> int:
        return len(self._points)

    def points(self) -> np.ndarray:
        """All registered points, ``(num_points, dim)``, build order."""
        if not self._points:
            return np.zeros((0, self.dim))
        return np.array(self._points)

    # ------------------------------------------------------------------
    def _tensor_entries(self, index):
        """``(keys, weights)`` of the full tensor rule of an index."""
        index = tuple(int(lv) for lv in index)
        if len(index) != self.dim or any(lv < 0 for lv in index):
            raise StochasticError(
                f"index must be {self.dim} non-negative levels, "
                f"got {index}")
        keys, weights = self.table.tensor_rule(index)
        return keys, np.array(weights)

    def new_points(self, index) -> np.ndarray:
        """Points the tensor rule of ``index`` would add, without
        registering them (budget checks)."""
        keys, _ = self._tensor_entries(index)
        fresh = [key for key in keys if key not in self._row_by_key]
        # A tensor rule never repeats a key internally, so the count of
        # unseen keys is the exact number of new solves.
        if not fresh:
            return np.zeros((0, self.dim))
        return np.array([[self.table.value(i) for i in key]
                         for key in fresh])

    def register(self, index) -> np.ndarray:
        """Register an index; returns its *new* points ``(n_new, dim)``.

        New points are appended to the global point list in
        deterministic tensor order; the caller evaluates the solver on
        exactly these rows (``num_points - n_new`` onward).
        """
        index = tuple(int(lv) for lv in index)
        if index in self._tensor:
            return np.zeros((0, self.dim))
        keys, weights = self._tensor_entries(index)
        new_points = []
        rows = np.empty(len(keys), dtype=np.intp)
        for k, key in enumerate(keys):
            row = self._row_by_key.get(key)
            if row is None:
                row = len(self._points)
                self._row_by_key[key] = row
                point = np.array([self.table.value(i) for i in key])
                self._points.append(point)
                new_points.append(point)
            rows[k] = row
        self._tensor[index] = (rows, weights)
        if not new_points:
            return np.zeros((0, self.dim))
        return np.array(new_points)

    def tensor_rows(self, index):
        """``(rows, weights)`` of a registered index's tensor rule."""
        index = tuple(int(lv) for lv in index)
        try:
            return self._tensor[index]
        except KeyError:
            raise StochasticError(
                f"index {index} is not registered") from None

    # ------------------------------------------------------------------
    def combined_weights(self, indices) -> np.ndarray:
        """Combination-technique weights over *all* registered points.

        ``(num_points,)``, aligned with :meth:`points` (and hence with
        solver values collected in registration order); points outside
        the given downward-closed set get weight 0.  Sums to 1 whenever
        the set contains the zero index.
        """
        coefficients = combination_coefficients(indices)
        weights = np.zeros(self.num_points)
        for index, coeff in coefficients.items():
            rows, tensor_weights = self.tensor_rows(index)
            np.add.at(weights, rows, coeff * tensor_weights)
        return weights

    def combined_quadrature(self, indices) -> SparseGrid:
        """Combination-technique rule of a downward-closed index set.

        Returns a :class:`~repro.stochastic.sparse_grid.SparseGrid`
        over every registered point (weights aligned with solver
        values); ``level`` reports the largest total level in the set.
        For the complete level-``L`` simplex this integrates exactly
        what :func:`~repro.stochastic.sparse_grid.smolyak_sparse_grid`
        does.
        """
        weights = self.combined_weights(indices)
        level = max(sum(int(lv) for lv in ix) for ix in indices)
        return SparseGrid(points=self.points(), weights=weights,
                          level=level)
