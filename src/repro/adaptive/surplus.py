"""Per-index surplus error indicators from the combination technique.

Adding index ``l`` to a downward-closed set changes the combined
quadrature by the tensor *difference* contribution

    Delta(l) f = (D_{l_1} x ... x D_{l_d}) f,
    D_j = Q_j - Q_{j-1} (D_0 = Q_0),

which expands over the support of ``l`` to an alternating sum of plain
tensor quadratures ``Q_{l - 1_T} f`` — all of them already evaluated,
because downward closure guarantees every lower index was registered
first.  The Gerstner-Griebel indicator of ``l`` is the norm of that
surplus relative to the current integral scale: it measures exactly how
much the new index moved the answer, so directions that matter get
refined and isotropic waste is skipped.
"""

from __future__ import annotations

from itertools import combinations, product

import numpy as np

from repro.errors import StochasticError
from repro.adaptive.grid import IncrementalGrid
from repro.stochastic.gauss_hermite import rule_size_for_level


def tensor_quadrature(grid: IncrementalGrid, values: np.ndarray,
                      index) -> np.ndarray:
    """Plain tensor-rule quadrature ``Q_l f`` from cached values.

    ``values`` is the ``(num_points, outputs)`` array of solver results
    aligned with the grid's registration order.
    """
    rows, weights = grid.tensor_rows(index)
    return weights @ values[rows]


def difference_quadrature(grid: IncrementalGrid, values: np.ndarray,
                          index) -> np.ndarray:
    """Surplus ``Delta(l) f``: the change from adding index ``l``.

    Expands the tensor difference product over the support of ``l``;
    every sub-index it touches must already be registered.
    """
    index = tuple(int(lv) for lv in index)
    support = [axis for axis, lv in enumerate(index) if lv > 0]
    surplus = np.zeros(values.shape[1])
    for count in range(len(support) + 1):
        sign = (-1) ** count
        for axes in combinations(support, count):
            lower = list(index)
            for axis in axes:
                lower[axis] -= 1
            surplus = surplus + sign * tensor_quadrature(
                grid, values, tuple(lower))
    return surplus


def tensor_degree_caps(index) -> tuple:
    """Largest aliasing-free 1-D Hermite degree per direction of a rule.

    A level-``l`` 1-D rule has ``m = rule_size_for_level(l)`` nodes and
    integrates degree ``2m - 1`` exactly, so projecting onto ``He_a``
    with ``a <= m - 1`` is exact for any integrand the rule itself can
    represent — the Conrad-Marzouk criterion the per-tensor projection
    and the order-adaptive basis both truncate by.
    """
    return tuple(rule_size_for_level(int(level)) - 1 for level in index)


def adaptive_basis_indices(indices) -> list:
    """Order-adaptive chaos truncation driven by an accepted index set.

    The union, over every tensor rule in the (downward-closed) level
    index set, of the aliasing-free basis box of that rule
    (:func:`tensor_degree_caps`): a direction refined to level ``l``
    contributes 1-D degrees up to ``rule_size_for_level(l) - 1``
    (2, 4, 8, ... at levels 1, 2, 3), and cross terms appear exactly
    where some accepted rule resolves them jointly.  Each member's box
    is ``prod(cap_j + 1)`` over its support — indices are sparse, so
    this never approaches ``(max_degree + 1)^dim``.

    Returned graded-lexicographically sorted, the constant term first
    — ready for :class:`~repro.stochastic.hermite.HermiteBasis`.
    """
    out = set()
    for index in indices:
        caps = tensor_degree_caps(index)
        out.update(product(*(range(cap + 1) for cap in caps)))
    if not out:
        raise StochasticError("index set is empty")
    return sorted(out, key=lambda alpha: (sum(alpha), alpha))


def surplus_indicator(surplus: np.ndarray, scale: np.ndarray) -> float:
    """Scalar refinement indicator: worst relative surplus component.

    ``scale`` holds per-output magnitudes (the running integral
    estimate, floored away from zero), so tolerances are relative and
    outputs of different units are comparable.
    """
    surplus = np.asarray(surplus, dtype=float)
    scale = np.asarray(scale, dtype=float)
    if surplus.shape != scale.shape:
        raise StochasticError(
            f"surplus {surplus.shape} and scale {scale.shape} disagree")
    return float(np.max(np.abs(surplus) / scale))


def integral_scale(estimate: np.ndarray, floor: float = 1e-30) -> np.ndarray:
    """Per-output normalization: |running integral| floored.

    The floor only matters for outputs that are identically ~0, where
    any surplus is equally (in)significant; it keeps indicators finite
    without promoting noise.
    """
    magnitude = np.abs(np.asarray(estimate, dtype=float))
    peak = float(magnitude.max()) if magnitude.size else 0.0
    return np.maximum(magnitude, max(floor, 1e-12 * peak))
