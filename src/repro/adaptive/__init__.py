"""Dimension-adaptive sparse-grid collocation (Gerstner-Griebel).

The fixed level-2 Smolyak grid of the paper's SSCM treats every
reduced variable alike; this package spends solves only where the
surplus indicators say they matter.  Building blocks: admissible
multi-index sets (:mod:`~repro.adaptive.indices`), incremental grids
over the shared exact node table (:mod:`~repro.adaptive.grid`),
combination-technique surpluses (:mod:`~repro.adaptive.surplus`) and
the budgeted refinement driver (:mod:`~repro.adaptive.driver`).  The
analysis layer exposes it as
``run_sscm_analysis(..., refinement=AdaptiveConfig(...))`` and the
serving layer caches adaptive surrogates with their accepted index set
and convergence trace as provenance.
"""

from repro.adaptive.indices import (
    MultiIndexSet,
    combination_coefficients,
    is_downward_closed,
)
from repro.adaptive.grid import IncrementalGrid
from repro.adaptive.surplus import (
    adaptive_basis_indices,
    difference_quadrature,
    integral_scale,
    surplus_indicator,
    tensor_degree_caps,
    tensor_quadrature,
)
from repro.adaptive.driver import (
    AdaptiveConfig,
    AdaptiveResult,
    WarmStart,
    run_adaptive_sscm,
)

__all__ = [
    "MultiIndexSet",
    "combination_coefficients",
    "is_downward_closed",
    "IncrementalGrid",
    "adaptive_basis_indices",
    "difference_quadrature",
    "integral_scale",
    "surplus_indicator",
    "tensor_degree_caps",
    "tensor_quadrature",
    "AdaptiveConfig",
    "AdaptiveResult",
    "WarmStart",
    "run_adaptive_sscm",
]
