"""Experiment preset for Table I (Section IV.A).

Two metal plugs on doped silicon at 1 GHz; QoI = |J| through the
metal-semiconductor interface of plug 1.  Three variation settings are
studied, exactly the rows of Table I:

* ``"geometry"``  — sigma_G != 0, sigma_M  = 0 (roughness only),
* ``"doping"``    — sigma_G  = 0, sigma_M != 0 (RDF only),
* ``"both"``      — both simultaneously.

Paper parameters: sigma_G = 0.5 um on the two plug/silicon interfaces
with eta = 0.7 um (32 perturbed nodes), 10 % RDF with eta = 0.5 um
(72 nodes); wPFA reduces 32 -> 12 and 72 -> 10 giving d = 22 and 1035
sparse-grid runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.problem import VariationalProblem
from repro.analysis.qoi import (
    interface_current_magnitude,
    per_port_qoi,
)
from repro.errors import StochasticError
from repro.geometry.builders import MetalPlugDesign, build_metalplug_structure
from repro.units import um
from repro.variation.groups import doping_group, geometry_groups_from_facets

#: Table I of the paper [uA]: (mean, std) of |J| per variation setting.
#: Absolute values are MAGWEL-testbed specific; the reproduction
#: compares *shape*: SSCM-vs-MC errors < 1 % and the std ordering
#: geometry > combined > doping.
TABLE1_PAPER_VALUES = {
    "deterministic": 0.0078,
    "geometry": {"mean": 0.0089, "std": 7.9023e-4},
    "doping": {"mean": 0.0082, "std": 2.8987e-4},
    "both": {"mean": 0.0087, "std": 6.2227e-4},
}

VARIANTS = ("geometry", "doping", "both")


@dataclass(frozen=True)
class Table1Config:
    """Tunable parameters of the Table I experiment.

    Defaults follow the paper; the benchmark's fast profile shrinks
    ``max_step`` (coarser mesh) and ``rdf_nodes``.
    """

    sigma_g: float = um(0.5)
    eta_g: float = um(0.7)
    sigma_m: float = 0.1
    eta_m: float = um(0.5)
    rdf_nodes: int = 72
    frequency: float = 1.0e9
    design: MetalPlugDesign = field(default_factory=MetalPlugDesign)
    surface_model: str = "csv"


TABLE1_PORTS = ("plug1", "plug2")


def table1_problem(variant: str = "both",
                   config: Table1Config = None,
                   multi_port: bool = False) -> VariationalProblem:
    """Build the Table I problem for one variation setting.

    Parameters
    ----------
    variant:
        Variation setting (one of ``VARIANTS``).
    config:
        Experiment parameters (default: the paper's).
    multi_port:
        When true, each sample solves both plug drives in one batched
        factorization (:meth:`AVSolver.solve_ports`) and the QoI is the
        plug-1 interface current magnitude under *each* drive
        (``J_interface@plug1``, ``J_interface@plug2``) instead of the
        single plug-1-driven value.
    """
    if variant not in VARIANTS:
        raise StochasticError(
            f"variant must be one of {VARIANTS}, got {variant!r}")
    if config is None:
        config = Table1Config()
    design = config.design
    structure = build_metalplug_structure(design)

    geometry_groups = []
    if variant in ("geometry", "both"):
        geometry_groups = geometry_groups_from_facets(
            structure.grid, design.interface_facets(),
            sigma=config.sigma_g, eta=config.eta_g,
            merge_coplanar=False)

    rdf_group = None
    if variant in ("doping", "both"):
        rdf_group = doping_group(structure, sigma_rel=config.sigma_m,
                                 eta=config.eta_m,
                                 max_nodes=config.rdf_nodes)

    qoi = interface_current_magnitude(contact="plug1")
    qoi_names = ["J_interface"]
    ports = None
    if multi_port:
        ports = list(TABLE1_PORTS)
        qoi = per_port_qoi(qoi, ports)
        qoi_names = [f"J_interface@{port}" for port in ports]

    return VariationalProblem(
        structure=structure,
        frequency=config.frequency,
        excitations={"plug1": 1.0, "plug2": 0.0},
        qoi=qoi,
        qoi_names=qoi_names,
        geometry_groups=geometry_groups,
        doping_group=rdf_group,
        surface_model=config.surface_model,
        ports=ports,
    )


def table1_spec(variant: str = "both", reduction: dict = None,
                adaptive=None, **params):
    """Declarative, cacheable form of the Table I experiment.

    Returns a :class:`~repro.serving.spec.ProblemSpec` for the serving
    layer: ``ensure_surrogate(table1_spec("geometry"), store)`` builds
    (or fetches) the fitted surrogate for that row of Table I.
    ``params`` override the preset defaults (``max_step_um``,
    ``rdf_nodes``, ``frequency``, ...; lengths in microns on the wire).
    ``adaptive`` — an
    :class:`~repro.adaptive.driver.AdaptiveConfig` or its dict form
    (``tol``/``max_solves``/``max_level``) — switches the build to the
    dimension-adaptive engine and becomes part of the cache key.
    """
    from repro.serving.spec import ProblemSpec
    if variant not in VARIANTS:
        raise StochasticError(
            f"variant must be one of {VARIANTS}, got {variant!r}")
    reduction = dict(reduction or {})
    if adaptive is not None:
        reduction["adaptive"] = adaptive
    return ProblemSpec(preset="table1",
                       params={"variant": variant, **params},
                       reduction=reduction)
