"""Experiment preset for Table II (Section IV.B).

Two TSVs through a silicon substrate with four surrounding wires; QoI =
the TSV1 column of the Maxwell capacitance matrix:
C_T1 (self), C_T1T2 (TSV-TSV coupling) and C_T1W1..C_T1W4 (TSV-wire
couplings).

Paper parameters: lateral-wall roughness in 8 facet groups with the
coplanar y-walls of the two TSVs merged (2 groups of 128 nodes + 4 of
64), 10 % RDF on 128 substrate nodes with eta = 0.5 um; wPFA reduces
128 -> 6 and 64 -> 4 giving d = 34 and 2415 sparse-grid runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.problem import VariationalProblem
from repro.analysis.qoi import (
    capacitance_column_qoi,
    capacitance_matrix_names,
    capacitance_matrix_qoi,
)
from repro.geometry.builders import TsvDesign, build_tsv_structure
from repro.units import um
from repro.variation.groups import doping_group, geometry_groups_from_facets

#: Table II of the paper [1e-15 F]: (mean, std) per capacitance entry.
TABLE2_PAPER_VALUES = {
    "C_T1": {"mean": 7.0567, "std": 0.8514},
    "C_T1T2": {"mean": -1.9691, "std": 0.4782},
    "C_T1W1": {"mean": -1.6275, "std": 0.3984},
    "C_T1W2": {"mean": -0.0152, "std": 0.00217},
    "C_T1W3": {"mean": -1.8313, "std": 0.1609},
    "C_T1W4": {"mean": -1.8310, "std": 0.1589},
}

#: Contact order of the reported column.
TABLE2_CONTACTS = ("tsv1", "tsv2", "w1", "w2", "w3", "w4")
#: QoI row labels of the reported capacitance column, in paper order.
TABLE2_ROW_NAMES = ("C_T1", "C_T1T2", "C_T1W1", "C_T1W2", "C_T1W3",
                    "C_T1W4")


@dataclass(frozen=True)
class Table2Config:
    """Tunable parameters of the Table II experiment.

    The paper quantifies the RDF as a 10 % perturbation with
    eta = 0.5 um but does *not* state sigma_G for the TSV lateral-wall
    roughness.  The default here is 0.15 um — a typical DRIE scallop
    amplitude — chosen so that 3-sigma perturbations stay well inside
    the 1 um wire-to-TSV gap; at 0.5 um (the example-A value) the
    capacitance's 1/gap singularity enters the collocation range and no
    quadratic model (the paper's included) could represent it.
    """

    sigma_g: float = um(0.15)
    eta_g: float = um(0.7)
    sigma_m: float = 0.1
    eta_m: float = um(0.5)
    rdf_nodes: int = 128
    frequency: float = 1.0e9
    design: TsvDesign = field(default_factory=TsvDesign)
    surface_model: str = "csv"
    merge_coplanar: bool = True


def table2_problem(config: Table2Config = None,
                   multi_port: bool = False) -> VariationalProblem:
    """Build the Table II problem (roughness + RDF combined).

    Parameters
    ----------
    config:
        Experiment parameters (default: the paper's, with the
        documented sigma_G choice).
    multi_port:
        When true, each sample drives every contact in turn through one
        batched factorization (:meth:`AVSolver.solve_ports`) and the
        QoI is the *full* 6 x 6 Maxwell capacitance matrix instead of
        only the paper's TSV1 column — the extra five columns cost five
        extra triangular solves, not five extra factorizations.
    """
    if config is None:
        config = Table2Config()
    design = config.design
    structure = build_tsv_structure(design)

    geometry_groups = geometry_groups_from_facets(
        structure.grid, design.lateral_facets(),
        sigma=config.sigma_g, eta=config.eta_g,
        merge_coplanar=config.merge_coplanar)
    rdf_group = doping_group(structure, sigma_rel=config.sigma_m,
                             eta=config.eta_m,
                             max_nodes=config.rdf_nodes)

    excitations = {name: (1.0 if name == "tsv1" else 0.0)
                   for name in TABLE2_CONTACTS}
    qoi = capacitance_column_qoi("tsv1", list(TABLE2_CONTACTS))
    qoi_names = list(TABLE2_ROW_NAMES)
    ports = None
    if multi_port:
        ports = list(TABLE2_CONTACTS)
        qoi = capacitance_matrix_qoi(ports)
        qoi_names = capacitance_matrix_names(ports)

    return VariationalProblem(
        structure=structure,
        frequency=config.frequency,
        excitations=excitations,
        qoi=qoi,
        qoi_names=qoi_names,
        geometry_groups=geometry_groups,
        doping_group=rdf_group,
        surface_model=config.surface_model,
        ports=ports,
    )


def table2_spec(reduction: dict = None, adaptive=None, **params):
    """Declarative, cacheable form of the Table II experiment.

    Returns a :class:`~repro.serving.spec.ProblemSpec`; ``params``
    override the preset defaults (``max_step_um``, ``margin_um``,
    ``rdf_nodes``, ``frequency``, ``multi_port``, ...; lengths in
    microns on the wire).  ``adaptive`` — an
    :class:`~repro.adaptive.driver.AdaptiveConfig` or its dict form —
    switches the build to the dimension-adaptive engine and becomes
    part of the cache key.
    """
    from repro.serving.spec import ProblemSpec
    reduction = dict(reduction or {})
    if adaptive is not None:
        reduction["adaptive"] = adaptive
    return ProblemSpec(preset="table2", params=dict(params),
                       reduction=reduction)
