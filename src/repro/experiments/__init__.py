"""Preset experiment builders for the paper's Section IV studies.

Examples, tests and the benchmark harness all build the same
:class:`~repro.analysis.problem.VariationalProblem` instances from
here, so the per-experiment configuration (sigma_G, sigma_M, eta,
grouping) lives in exactly one place.
"""

from repro.experiments.table1 import (
    Table1Config,
    table1_problem,
    table1_spec,
    TABLE1_PAPER_VALUES,
)
from repro.experiments.table2 import (
    Table2Config,
    table2_problem,
    table2_spec,
    TABLE2_PAPER_VALUES,
    TABLE2_CONTACTS,
    TABLE2_ROW_NAMES,
)

__all__ = [
    "Table1Config",
    "table1_problem",
    "table1_spec",
    "TABLE1_PAPER_VALUES",
    "Table2Config",
    "table2_problem",
    "table2_spec",
    "TABLE2_PAPER_VALUES",
    "TABLE2_CONTACTS",
    "TABLE2_ROW_NAMES",
]
