"""Drift-diffusion discretization (paper eq. 2).

Scharfetter-Gummel link fluxes with a numerically stable Bernoulli
function, SRH recombination, and the nonlinear-Poisson equilibrium
machinery that supplies the DC operating point the frequency-domain
system is linearized around.
"""

from repro.semiconductor.bernoulli import bernoulli, bernoulli_derivative
from repro.semiconductor.scharfetter_gummel import (
    electron_flux,
    hole_flux,
    electron_flux_linearization,
    hole_flux_linearization,
)

__all__ = [
    "bernoulli",
    "bernoulli_derivative",
    "electron_flux",
    "hole_flux",
    "electron_flux_linearization",
    "hole_flux_linearization",
]
