"""Scharfetter-Gummel link fluxes and their linearization.

Conventions (used consistently by the AC assembler):

* every link is oriented from ``node_a`` to ``node_b``;
* ``u = (V_b - V_a) / V_T`` is the normalized link voltage;
* fluxes are *particle* fluxes per unit area **along** the link
  (positive = from a to b); multiply by ``q`` for current density;
* electron flux:  ``F_n = (mu_n V_T / L) [n_a B(-u) - n_b B(u)]``
* hole flux:      ``F_p = (mu_p V_T / L) [p_a B(u) - p_b B(-u)]``

Both vanish identically in thermal equilibrium
(``n = ni exp(V/V_T)``, ``p = ni exp(-V/V_T)``) thanks to the identity
``B(-u) = exp(u) B(u)``, which the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.semiconductor.bernoulli import bernoulli, bernoulli_derivative


def electron_flux(n_a, n_b, u, mobility, vt: float, length):
    """Electron particle flux along the link [1/(m^2 s)]."""
    return (mobility * vt / length) * (n_a * bernoulli(-np.asarray(u))
                                       - n_b * bernoulli(u))


def hole_flux(p_a, p_b, u, mobility, vt: float, length):
    """Hole particle flux along the link [1/(m^2 s)]."""
    return (mobility * vt / length) * (p_a * bernoulli(u)
                                       - p_b * bernoulli(-np.asarray(u)))


@dataclass(frozen=True)
class FluxLinearization:
    """First-order expansion of a link flux.

    ``delta_F = coef_a * delta_c_a + coef_b * delta_c_b
    + coef_dv * (delta_V_b - delta_V_a)``
    where ``delta_c`` is the carrier perturbation at each endpoint.
    """

    coef_a: np.ndarray
    coef_b: np.ndarray
    coef_dv: np.ndarray


def electron_flux_linearization(n0_a, n0_b, u0, mobility, vt: float,
                                length) -> FluxLinearization:
    """Linearize the electron flux around the DC state.

    With ``u = (V_b - V_a)/V_T``::

        dF/dn_a =  (mu V_T / L) B(-u0)
        dF/dn_b = -(mu V_T / L) B(u0)
        dF/d(V_b - V_a) = (mu / L) [-n0_a B'(-u0) - n0_b B'(u0)]
    """
    u0 = np.asarray(u0, dtype=float)
    base = mobility * vt / length
    coef_a = base * bernoulli(-u0)
    coef_b = -base * bernoulli(u0)
    coef_dv = (mobility / length) * (-n0_a * bernoulli_derivative(-u0)
                                     - n0_b * bernoulli_derivative(u0))
    return FluxLinearization(coef_a=coef_a, coef_b=coef_b, coef_dv=coef_dv)


def hole_flux_linearization(p0_a, p0_b, u0, mobility, vt: float,
                            length) -> FluxLinearization:
    """Linearize the hole flux around the DC state.

    With ``u = (V_b - V_a)/V_T``::

        dF/dp_a =  (mu V_T / L) B(u0)
        dF/dp_b = -(mu V_T / L) B(-u0)
        dF/d(V_b - V_a) = (mu / L) [p0_a B'(u0) + p0_b B'(-u0)]
    """
    u0 = np.asarray(u0, dtype=float)
    base = mobility * vt / length
    coef_a = base * bernoulli(u0)
    coef_b = -base * bernoulli(-u0)
    coef_dv = (mobility / length) * (p0_a * bernoulli_derivative(u0)
                                     + p0_b * bernoulli_derivative(-u0))
    return FluxLinearization(coef_a=coef_a, coef_b=coef_b, coef_dv=coef_dv)
