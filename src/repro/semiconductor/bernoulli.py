"""Numerically stable Bernoulli function.

The Scharfetter-Gummel discretization is built on
``B(x) = x / (exp(x) - 1)``, which is removable-singular at 0 and
overflow-prone for large ``|x|``.  Both ``B`` and ``B'`` here are stable
over the whole real line and fully vectorized; the property-based tests
check the identities ``B(-x) = B(x) + x`` and ``B(x) >= 0``.
"""

from __future__ import annotations

import numpy as np

#: Below this magnitude a Taylor series replaces the closed form.
_SERIES_CUTOFF = 1.0e-4
#: Arguments are clipped here to avoid overflow in exp; B(700) ~ 1e-301.
_CLIP = 500.0


def bernoulli(x):
    """``B(x) = x / (exp(x) - 1)``, elementwise.

    >>> float(bernoulli(0.0))
    1.0
    """
    x = np.clip(np.asarray(x, dtype=float), -_CLIP, _CLIP)
    small = np.abs(x) < _SERIES_CUTOFF
    safe = np.where(small, 1.0, x)
    with np.errstate(over="ignore", invalid="ignore"):
        closed = safe / np.expm1(safe)
    # B(x) = 1 - x/2 + x^2/12 - x^4/720 + O(x^6)
    x2 = x * x
    series = 1.0 - x / 2.0 + x2 / 12.0 - x2 * x2 / 720.0
    return np.where(small, series, closed)


def bernoulli_derivative(x):
    """``B'(x) = (exp(x) - 1 - x exp(x)) / (exp(x) - 1)^2``, elementwise.

    Equivalently ``B'(x) = B(x) * (1/x - 1 - B(x)/x)`` away from 0; the
    direct expm1-based form below is stable once the argument is clipped.

    >>> float(bernoulli_derivative(0.0))
    -0.5
    """
    x = np.clip(np.asarray(x, dtype=float), -_CLIP, _CLIP)
    small = np.abs(x) < _SERIES_CUTOFF
    safe = np.where(small, 1.0, x)
    with np.errstate(over="ignore", invalid="ignore"):
        em1 = np.expm1(safe)
        ex = em1 + 1.0
        closed = (em1 - safe * ex) / (em1 * em1)
    # B'(x) = -1/2 + x/6 - x^3/180 + O(x^5)
    series = -0.5 + x / 6.0 - x ** 3 / 180.0
    return np.where(small, series, closed)
