"""Exception hierarchy for the repro package.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still distinguishing mesh problems from solver
problems when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class MeshError(ReproError):
    """A mesh is structurally invalid (bad sizes, non-monotonic axes...)."""


class MeshDestroyedError(MeshError):
    """A geometric perturbation inverted the mesh.

    This is the failure mode of the *traditional* perturbation model that
    Fig. 1(a) of the paper illustrates: a perturbed node crossed one of its
    neighbours so cell volumes became non-positive.
    """


class GeometryError(ReproError):
    """A structure definition is inconsistent (overlapping boxes, regions
    outside the simulation domain...)."""


class MaterialError(ReproError):
    """A material definition or lookup is invalid."""


class ConvergenceError(ReproError):
    """A nonlinear (Newton / Gummel) iteration failed to converge."""

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class SingularSystemError(ReproError):
    """A linear system factorization failed (singular or badly scaled)."""


class SolverBackendError(ReproError):
    """Invalid solver-backend selection or configuration (unknown
    backend name, tolerance on a direct backend, duplicate registry
    entry...)."""


class StochasticError(ReproError):
    """Invalid stochastic-model configuration (bad covariance, empty
    variable set, unsupported expansion order...)."""


class ExtractionError(ReproError):
    """A post-processing quantity could not be computed (e.g. requesting
    the current through an interface that does not exist)."""


class ServingError(ReproError):
    """Invalid surrogate-serving request (unknown preset, malformed
    spec or query, miss on a read-only store...)."""


class StoreCorruptionError(ServingError):
    """A persisted surrogate entry failed its integrity check (checksum
    mismatch, truncated payload, missing sidecar fields)."""


class StoreSchemaError(ServingError):
    """A persisted surrogate entry was written under an incompatible
    schema version and cannot be trusted."""


class CampaignError(ServingError):
    """Invalid campaign grid or catalog (malformed grid spec, unknown
    campaign id, unreadable catalog document...)."""
