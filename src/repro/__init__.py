"""repro — variation-aware EM-semiconductor coupled solver for 3D-IC TSVs.

Reproduction of Xu, Yu, Chen, Jiang & Wong, "Efficient Variation-Aware
EM-Semiconductor Coupled Solver for the TSV Structures in 3D IC",
DATE 2012.

Quick tour
----------
>>> from repro import build_metalplug_structure, AVSolver
>>> solver = AVSolver(build_metalplug_structure(), frequency=1e9)
>>> solution = solver.solve({"plug1": 1.0, "plug2": 0.0})

Stochastic pipeline::

    from repro.experiments import table1_problem
    from repro.analysis import run_sscm_analysis, run_mc_analysis

    problem = table1_problem("both")
    sscm = run_sscm_analysis(problem)          # wPFA + sparse grid
    mc = run_mc_analysis(problem, num_runs=2000)
"""

from repro.constants import EPS0, MU0, Q, VT_ROOM
from repro.units import um, nm, ghz
from repro.errors import (
    ReproError,
    MeshError,
    MeshDestroyedError,
    GeometryError,
    MaterialError,
    ConvergenceError,
    SingularSystemError,
    StochasticError,
    ExtractionError,
)
from repro.mesh import CartesianGrid, PerturbedGrid, compute_geometry
from repro.geometry import (
    Box,
    Structure,
    MetalPlugDesign,
    TsvDesign,
    build_metalplug_structure,
    build_tsv_structure,
)
from repro.materials import (
    Metal,
    Insulator,
    Semiconductor,
    copper,
    tungsten,
    silicon_dioxide,
    doped_silicon,
    UniformDoping,
)
from repro.variation import (
    ContinuousSurfaceModel,
    NaiveSurfaceModel,
    GaussianRandomField,
)
from repro.solver import AVSolver, ACSolution
from repro.extraction import (
    port_current,
    metal_semiconductor_current,
    capacitance_column,
)
from repro.stochastic import (
    run_sscm,
    run_monte_carlo,
    smolyak_sparse_grid,
    pfa_reduce,
    wpfa_reduce,
)
from repro.adaptive import AdaptiveConfig, run_adaptive_sscm
from repro.analysis import (
    VariationalProblem,
    run_problem,
    run_sscm_analysis,
    run_mc_analysis,
    ComparisonTable,
)

__version__ = "0.1.0"

__all__ = [
    "EPS0", "MU0", "Q", "VT_ROOM",
    "um", "nm", "ghz",
    "ReproError", "MeshError", "MeshDestroyedError", "GeometryError",
    "MaterialError", "ConvergenceError", "SingularSystemError",
    "StochasticError", "ExtractionError",
    "CartesianGrid", "PerturbedGrid", "compute_geometry",
    "Box", "Structure", "MetalPlugDesign", "TsvDesign",
    "build_metalplug_structure", "build_tsv_structure",
    "Metal", "Insulator", "Semiconductor",
    "copper", "tungsten", "silicon_dioxide", "doped_silicon",
    "UniformDoping",
    "ContinuousSurfaceModel", "NaiveSurfaceModel", "GaussianRandomField",
    "AVSolver", "ACSolution",
    "port_current", "metal_semiconductor_current", "capacitance_column",
    "run_sscm", "run_monte_carlo", "smolyak_sparse_grid",
    "pfa_reduce", "wpfa_reduce",
    "AdaptiveConfig", "run_adaptive_sscm",
    "VariationalProblem", "run_problem", "run_sscm_analysis",
    "run_mc_analysis",
    "ComparisonTable",
    "__version__",
]
