"""repro — variation-aware EM-semiconductor coupled solver for 3D-IC TSVs.

Reproduction of Xu, Yu, Chen, Jiang & Wong, "Efficient Variation-Aware
EM-Semiconductor Coupled Solver for the TSV Structures in 3D IC",
DATE 2012.

Quick tour
----------
>>> from repro import build_metalplug_structure, AVSolver
>>> solver = AVSolver(build_metalplug_structure(), frequency=1e9)
>>> solution = solver.solve({"plug1": 1.0, "plug2": 0.0})

Stochastic pipeline::

    from repro.experiments import table1_problem
    from repro.analysis import run_sscm_analysis, run_mc_analysis

    problem = table1_problem("both")
    sscm = run_sscm_analysis(problem)          # wPFA + sparse grid
    mc = run_mc_analysis(problem, num_runs=2000)

Exports resolve lazily (PEP 562): importing :mod:`repro` costs
nothing, and pure-stdlib subsystems — :mod:`repro.lint` foremost, so
the CI lint job runs ``python -m repro.lint`` without installing
numpy/scipy — never drag the scientific stack in.  ``from repro
import AVSolver`` imports the solver stack on first touch exactly as
the eager form did.
"""

from __future__ import annotations

import importlib

#: Lazy export table: public name -> defining subpackage.  This *is*
#: the package's public surface — ``__all__`` is derived from it, and
#: ``repro.lint``'s RL5xx rules check that every entry resolves to a
#: documented definition.
_EXPORTS = {
    "EPS0": "repro.constants",
    "MU0": "repro.constants",
    "Q": "repro.constants",
    "VT_ROOM": "repro.constants",
    "um": "repro.units",
    "nm": "repro.units",
    "ghz": "repro.units",
    "ReproError": "repro.errors",
    "MeshError": "repro.errors",
    "MeshDestroyedError": "repro.errors",
    "GeometryError": "repro.errors",
    "MaterialError": "repro.errors",
    "ConvergenceError": "repro.errors",
    "SingularSystemError": "repro.errors",
    "StochasticError": "repro.errors",
    "ExtractionError": "repro.errors",
    "CartesianGrid": "repro.mesh",
    "PerturbedGrid": "repro.mesh",
    "compute_geometry": "repro.mesh",
    "Box": "repro.geometry",
    "Structure": "repro.geometry",
    "MetalPlugDesign": "repro.geometry",
    "TsvDesign": "repro.geometry",
    "build_metalplug_structure": "repro.geometry",
    "build_tsv_structure": "repro.geometry",
    "Metal": "repro.materials",
    "Insulator": "repro.materials",
    "Semiconductor": "repro.materials",
    "copper": "repro.materials",
    "tungsten": "repro.materials",
    "silicon_dioxide": "repro.materials",
    "doped_silicon": "repro.materials",
    "UniformDoping": "repro.materials",
    "ContinuousSurfaceModel": "repro.variation",
    "NaiveSurfaceModel": "repro.variation",
    "GaussianRandomField": "repro.variation",
    "AVSolver": "repro.solver",
    "ACSolution": "repro.solver",
    "port_current": "repro.extraction",
    "metal_semiconductor_current": "repro.extraction",
    "capacitance_column": "repro.extraction",
    "run_sscm": "repro.stochastic",
    "run_monte_carlo": "repro.stochastic",
    "smolyak_sparse_grid": "repro.stochastic",
    "pfa_reduce": "repro.stochastic",
    "wpfa_reduce": "repro.stochastic",
    "AdaptiveConfig": "repro.adaptive",
    "run_adaptive_sscm": "repro.adaptive",
    "VariationalProblem": "repro.analysis",
    "run_problem": "repro.analysis",
    "run_sscm_analysis": "repro.analysis",
    "run_mc_analysis": "repro.analysis",
    "ComparisonTable": "repro.analysis",
}

#: Package version (kept importable without touching any subpackage).
__version__ = "0.1.0"

__all__ = [*_EXPORTS, "__version__"]


def __getattr__(name: str):
    """Resolve a public name through the lazy export table (PEP 562).

    Unknown names fall back to submodule import, so ``import repro;
    repro.serving`` keeps working exactly as it did when the package
    imported eagerly.  Resolved values are cached in the module dict,
    so each export pays the import cost once.
    """
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        try:
            return importlib.import_module(f"{__name__}.{name}")
        except ModuleNotFoundError:
            raise AttributeError(
                f"module {__name__!r} has no attribute {name!r}"
            ) from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    """Advertise lazy exports alongside whatever already resolved."""
    return sorted(set(globals()) | set(_EXPORTS))
