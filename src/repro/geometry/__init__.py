"""Structure definition: material regions on a Cartesian grid.

A :class:`~repro.geometry.structure.Structure` couples a grid with a
per-cell material map, named contacts (port node sets) and a doping
profile.  :mod:`repro.geometry.builders` assembles the paper's two test
structures: the metal-plug-on-silicon example (Fig. 2a) and the two-TSV
example (Fig. 3).
"""

from repro.geometry.shapes import Box
from repro.geometry.structure import Structure, NodeKindTable
from repro.geometry.interfaces import (
    facet_nodes,
    interface_links,
    metal_semiconductor_interface_nodes,
)
from repro.geometry.builders import (
    MetalPlugDesign,
    TsvDesign,
    build_metalplug_structure,
    build_tsv_structure,
)

__all__ = [
    "Box",
    "Structure",
    "NodeKindTable",
    "facet_nodes",
    "interface_links",
    "metal_semiconductor_interface_nodes",
    "MetalPlugDesign",
    "TsvDesign",
    "build_metalplug_structure",
    "build_tsv_structure",
]
