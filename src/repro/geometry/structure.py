"""Structure: a grid plus material regions, contacts and doping.

The node-kind classification implements the FVM convention of the
coupled A-V solver:

* a node touching at least one **metal** cell is a *metal node* (it
  carries the metal current-continuity equation, or a Dirichlet value
  when its conductor is driven);
* otherwise, a node touching at least one **semiconductor** cell is a
  *semiconductor node* (it carries Gauss's law with free charge and the
  carrier unknowns n, p);
* every other node is an *insulator node* (plain Gauss's law).

Nodes touching both metal and semiconductor cells are **ohmic contact
nodes**: they are metal nodes for the potential and Dirichlet points for
the carriers (charge-neutral equilibrium, zero excess carriers in AC).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError, MaterialError
from repro.geometry.shapes import Box
from repro.materials.doping import DopingProfile
from repro.materials.material import (
    Material,
    MaterialKind,
    MaterialTable,
    Semiconductor,
)
from repro.mesh.grid import CartesianGrid


@dataclass(frozen=True)
class NodeKindTable:
    """Per-node boolean classification masks (flat node order)."""

    metal: np.ndarray
    semiconductor: np.ndarray
    insulator: np.ndarray
    ohmic_contact: np.ndarray

    @property
    def num_metal(self) -> int:
        return int(np.count_nonzero(self.metal))

    @property
    def num_semiconductor(self) -> int:
        return int(np.count_nonzero(self.semiconductor))

    @property
    def num_insulator(self) -> int:
        return int(np.count_nonzero(self.insulator))


class Structure:
    """Material regions and ports on a Cartesian grid.

    Parameters
    ----------
    grid:
        The computational grid; material boxes should align with grid
        lines (use :func:`repro.mesh.refine.axis_from_breakpoints`).
    background:
        Material filling every cell not claimed by a box (usually an
        insulator).
    """

    def __init__(self, grid: CartesianGrid, background: Material):
        self.grid = grid
        self.materials = MaterialTable()
        background_id = self.materials.add(background)
        if background_id != 0:
            raise GeometryError("background material must be added first")
        self.cell_materials = np.zeros(grid.num_cells, dtype=int)
        self.contacts: dict = {}
        self.doping: DopingProfile = None
        self.regions: list = []  # (material name, Box) in paint order
        self._node_kinds = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_box(self, material: Material, box: Box,
                tol: float = None) -> int:
        """Paint ``box`` with ``material`` (later boxes override earlier).

        Returns the number of cells painted; raises if the box covers no
        cells (almost always a units or alignment mistake).
        """
        material_id = self.materials.add(material)
        if tol is None:
            tol = 1e-9 * max(*box.size)
        cell_ids = self.grid.cells_in_box(box.lo, box.hi, tol=tol)
        if cell_ids.size == 0:
            raise GeometryError(
                f"box {box.lo}..{box.hi} covers no cells; check units and "
                f"grid alignment")
        self.cell_materials[cell_ids] = material_id
        self.regions.append((material.name, box))
        self._node_kinds = None
        return int(cell_ids.size)

    def set_doping(self, profile: DopingProfile) -> None:
        """Attach the net-doping profile for all semiconductor regions."""
        self.doping = profile

    def add_contact(self, name: str, node_ids) -> None:
        """Register a named port as an explicit node set."""
        node_ids = np.unique(np.asarray(node_ids, dtype=int))
        if node_ids.size == 0:
            raise GeometryError(f"contact {name!r} has no nodes")
        if np.any(node_ids < 0) or np.any(node_ids >= self.grid.num_nodes):
            raise GeometryError(f"contact {name!r} has out-of-range nodes")
        if name in self.contacts:
            raise GeometryError(f"contact {name!r} already defined")
        self.contacts[name] = node_ids

    def add_contact_on_box_face(self, name: str, box: Box, face: str) -> None:
        """Register the grid nodes lying on one face of ``box``."""
        extent = max(*box.size)
        face_region = box.face_box(face, thickness=1e-9 * extent)
        node_ids = self.grid.nodes_in_box(face_region.lo, face_region.hi)
        if node_ids.size == 0:
            raise GeometryError(
                f"no nodes found on face {face!r} of box {box.lo}..{box.hi}")
        self.add_contact(name, node_ids)

    # ------------------------------------------------------------------
    # Derived data
    # ------------------------------------------------------------------
    def cell_kind_masks(self):
        """Per-cell boolean masks ``(metal, semiconductor, insulator)``."""
        kinds = np.array([m.kind for m in self.materials.materials])
        cell_kinds = kinds[self.cell_materials]
        return (cell_kinds == MaterialKind.METAL,
                cell_kinds == MaterialKind.SEMICONDUCTOR,
                cell_kinds == MaterialKind.INSULATOR)

    def _scatter_cells_to_nodes(self, cell_mask: np.ndarray) -> np.ndarray:
        """True for nodes touching at least one cell where the mask holds."""
        grid = self.grid
        ncx, ncy, ncz = grid.cell_shape
        mask_3d = np.transpose(
            cell_mask.reshape(ncz, ncy, ncx), (2, 1, 0))
        node_mask = np.zeros(grid.shape, dtype=bool)
        for di in (0, 1):
            for dj in (0, 1):
                for dk in (0, 1):
                    node_mask[di:ncx + di, dj:ncy + dj,
                              dk:ncz + dk] |= mask_3d
        return grid.flat_field(node_mask)

    def node_kinds(self) -> NodeKindTable:
        """Classify every node; cached until the structure changes."""
        if self._node_kinds is None:
            metal_cells, semi_cells, _ = self.cell_kind_masks()
            touches_metal = self._scatter_cells_to_nodes(metal_cells)
            touches_semi = self._scatter_cells_to_nodes(semi_cells)
            metal = touches_metal
            semiconductor = touches_semi & ~touches_metal
            insulator = ~touches_metal & ~touches_semi
            ohmic = touches_metal & touches_semi
            self._node_kinds = NodeKindTable(
                metal=metal,
                semiconductor=semiconductor,
                insulator=insulator,
                ohmic_contact=ohmic,
            )
        return self._node_kinds

    def semiconductor_node_ids(self) -> np.ndarray:
        """Flat ids of nodes carrying carrier unknowns (incl. contacts)."""
        kinds = self.node_kinds()
        return np.nonzero(kinds.semiconductor | kinds.ohmic_contact)[0]

    def primary_semiconductor(self) -> Semiconductor:
        """The semiconductor material of the structure.

        The paper's structures have a single semiconductor region type;
        raises when there is none or more than one.
        """
        semis = [m for m in self.materials.materials
                 if isinstance(m, Semiconductor)]
        if not semis:
            raise MaterialError("structure has no semiconductor material")
        if len({m.name for m in semis}) > 1:
            raise MaterialError(
                "structure has multiple semiconductor materials; "
                "query repro.materials directly")
        return semis[0]

    def net_doping_at_nodes(self) -> np.ndarray:
        """Net doping [1/m^3] at every node (zero outside semiconductors).

        Uses the attached :class:`DopingProfile` when present, otherwise
        the uniform background doping of the semiconductor material.
        """
        values = np.zeros(self.grid.num_nodes, dtype=float)
        kinds = self.node_kinds()
        semi_mask = kinds.semiconductor | kinds.ohmic_contact
        if not np.any(semi_mask):
            return values
        coords = self.grid.node_coords()
        if self.doping is not None:
            all_values = self.doping.net_doping(coords)
            values[semi_mask] = all_values[semi_mask]
        else:
            material = self.primary_semiconductor()
            values[semi_mask] = material.net_doping
        return values

    def contact_node_ids(self, name: str) -> np.ndarray:
        try:
            return self.contacts[name]
        except KeyError as exc:
            raise GeometryError(f"no contact named {name!r}; defined: "
                                f"{sorted(self.contacts)}") from exc

    def material_of_cells(self) -> np.ndarray:
        """Copy of the per-cell material-id array."""
        return self.cell_materials.copy()

    def summary(self) -> str:
        """One-line inventory used by examples and benchmarks."""
        kinds = self.node_kinds()
        return (f"{self.grid!r}; materials="
                f"{[m.name for m in self.materials.materials]}; "
                f"metal nodes={kinds.num_metal}, "
                f"semiconductor nodes={kinds.num_semiconductor}, "
                f"insulator nodes={kinds.num_insulator}, "
                f"contacts={sorted(self.contacts)}")
