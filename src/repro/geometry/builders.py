"""The paper's two test structures.

* :func:`build_metalplug_structure` — Section IV.A / Fig. 2(a): two
  3x3x5 um metal plugs sitting on a 10x10x10 um doped-silicon block.
* :func:`build_tsv_structure` — Section IV.B / Fig. 3: two 5x5 um,
  20 um tall TSVs through a 5 um silicon substrate with two 2 um metal
  trace layers (wires W1..W4, width 1 um, height 2 um, pitch 2 um).

Both builders accept a design dataclass so tests, examples and
benchmarks can trade resolution for runtime; all dimensions are metres.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError
from repro.geometry.interfaces import facet_nodes
from repro.geometry.shapes import Box
from repro.geometry.structure import Structure
from repro.materials.library import (
    copper,
    doped_silicon,
    silicon_dioxide,
    tungsten,
)
from repro.mesh.grid import CartesianGrid
from repro.mesh.refine import axis_from_breakpoints
from repro.units import um


@dataclass(frozen=True)
class FacetSpec:
    """One perturbable interface facet.

    Attributes
    ----------
    name:
        Identifier used for perturbation grouping (e.g. ``tsv1_x-``).
    axis:
        The facet normal axis (nodes are displaced along it).
    coordinate:
        Nominal position of the facet plane [m].
    lo, hi:
        Bounding box of the facet patch (the ``axis`` components equal
        ``coordinate``).
    inward:
        Unit sign: displacing a node by ``+inward`` moves it *into* the
        region the facet bounds (used to orient roughness if needed).
    """

    name: str
    axis: int
    coordinate: float
    lo: tuple
    hi: tuple
    inward: int

    def node_ids(self, grid: CartesianGrid) -> np.ndarray:
        """Flat ids of the facet's nodes on ``grid``."""
        return facet_nodes(grid, self.axis, self.coordinate,
                           lo=self.lo, hi=self.hi)


# ----------------------------------------------------------------------
# Example A: metal plugs on doped silicon
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MetalPlugDesign:
    """Parameters of the metal-plug structure (defaults match Fig. 2a)."""

    silicon_size: tuple = (um(10.0), um(10.0), um(10.0))
    plug_footprint: tuple = (um(3.0), um(3.0))
    plug_height: float = um(5.0)
    plug1_x: float = um(1.0)      # left edge of plug 1
    plug2_x: float = um(6.0)      # left edge of plug 2
    plug_y: float = um(3.5)       # front edge of both plugs
    net_doping: float = 1.0e21    # n-type 1e15 cm^-3 substrate
    max_step: float = um(1.0)

    @property
    def interface_z(self) -> float:
        """Height of the metal-semiconductor interface plane."""
        return self.silicon_size[2]

    @property
    def domain_hi(self) -> tuple:
        sx, sy, sz = self.silicon_size
        return (sx, sy, sz + self.plug_height)

    def plug_boxes(self) -> list:
        """Boxes of the two plugs (on top of the silicon block)."""
        wx, wy = self.plug_footprint
        z0 = self.interface_z
        z1 = z0 + self.plug_height
        return [
            Box((self.plug1_x, self.plug_y, z0),
                (self.plug1_x + wx, self.plug_y + wy, z1)),
            Box((self.plug2_x, self.plug_y, z0),
                (self.plug2_x + wx, self.plug_y + wy, z1)),
        ]

    def interface_facets(self) -> list:
        """The two rough metal-semiconductor interface patches.

        These are the facets that carry the sigma_G = 0.5 um surface
        roughness in Table I (normal = z, the plug axis).
        """
        facets = []
        for idx, box in enumerate(self.plug_boxes(), start=1):
            lo = (box.lo[0], box.lo[1], self.interface_z)
            hi = (box.hi[0], box.hi[1], self.interface_z)
            facets.append(FacetSpec(
                name=f"plug{idx}_interface",
                axis=2,
                coordinate=self.interface_z,
                lo=lo,
                hi=hi,
                inward=-1,
            ))
        return facets

    def silicon_box(self) -> Box:
        return Box((0.0, 0.0, 0.0), self.silicon_size)


def build_metalplug_structure(design: MetalPlugDesign = None) -> Structure:
    """Assemble the Fig. 2(a) structure.

    Contacts: ``plug1`` and ``plug2`` on the plug top faces; the silicon
    block bottom is left floating (natural boundary), so at 1 GHz the
    AC current driven into ``plug1`` returns through ``plug2`` across
    the two metal-semiconductor interfaces, as in Table I.
    """
    if design is None:
        design = MetalPlugDesign()
    plug_boxes = design.plug_boxes()
    silicon = design.silicon_box()

    bps_x = {0.0, design.domain_hi[0]}
    bps_y = {0.0, design.domain_hi[1]}
    bps_z = {0.0, design.interface_z, design.domain_hi[2]}
    for box in plug_boxes:
        bps_x.update(box.breakpoints(0))
        bps_y.update(box.breakpoints(1))
        bps_z.update(box.breakpoints(2))

    grid = CartesianGrid(
        axis_from_breakpoints(sorted(bps_x), design.max_step),
        axis_from_breakpoints(sorted(bps_y), design.max_step),
        axis_from_breakpoints(sorted(bps_z), design.max_step),
    )
    structure = Structure(grid, background=silicon_dioxide("ild"))
    structure.add_box(doped_silicon(design.net_doping), silicon)
    metal = tungsten("plug_metal")
    for idx, box in enumerate(plug_boxes, start=1):
        structure.add_box(metal, box)
        structure.add_contact_on_box_face(f"plug{idx}", box, "z+")
    return structure


# ----------------------------------------------------------------------
# Example B: two TSVs with metal traces
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TsvDesign:
    """Parameters of the TSV structure (defaults match Fig. 3).

    Geometry (z up): TSVs span the full 20 um height; the 5 um silicon
    substrate sits mid-stack; two 2 um trace layers hold wires W1/W2
    (bottom) and W3/W4 (top).  W1 flanks TSV1, W2 flanks TSV2 (hence the
    ~100x smaller C_T1W2 of Table II), and W3/W4 flank TSV1 symmetrically
    (hence C_T1W3 ~ C_T1W4).
    """

    tsv_cross_section: float = um(5.0)
    tsv_height: float = um(20.0)
    tsv_pitch: float = um(10.0)          # edge-to-edge gap between TSVs
    substrate_thickness: float = um(5.0)
    metal_layer_thickness: float = um(2.0)
    wire_width: float = um(1.0)
    wire_gap: float = um(1.0)            # gap between wire and TSV wall
    liner_thickness: float = um(0.5)
    net_doping: float = -1.0e21          # p-type 1e15 cm^-3 substrate
    margin: float = um(3.0)              # dielectric margin around TSVs
    max_step: float = um(1.0)

    @property
    def tsv1_x(self) -> float:
        return self.margin + self.wire_width + self.wire_gap

    @property
    def tsv2_x(self) -> float:
        return self.tsv1_x + self.tsv_cross_section + self.tsv_pitch

    @property
    def tsv_y(self) -> float:
        return self.margin

    @property
    def domain_hi(self) -> tuple:
        w = self.tsv_cross_section
        x1 = self.tsv2_x + w + self.wire_gap + self.wire_width + self.margin
        y1 = self.tsv_y + w + self.margin
        return (x1, y1, self.tsv_height)

    @property
    def substrate_z(self) -> tuple:
        """(z0, z1) of the silicon slab, centred in the stack."""
        z0 = 0.3 * self.tsv_height
        return (z0, z0 + self.substrate_thickness)

    @property
    def bottom_layer_z(self) -> tuple:
        return (um(2.0), um(2.0) + self.metal_layer_thickness)

    @property
    def top_layer_z(self) -> tuple:
        z1 = self.tsv_height - um(5.0)
        return (z1, z1 + self.metal_layer_thickness)

    def tsv_boxes(self) -> list:
        w = self.tsv_cross_section
        return [
            Box((self.tsv1_x, self.tsv_y, 0.0),
                (self.tsv1_x + w, self.tsv_y + w, self.tsv_height)),
            Box((self.tsv2_x, self.tsv_y, 0.0),
                (self.tsv2_x + w, self.tsv_y + w, self.tsv_height)),
        ]

    def liner_boxes(self) -> list:
        """Oxide liner: TSV boxes dilated laterally inside the substrate."""
        t = self.liner_thickness
        z0, z1 = self.substrate_z
        boxes = []
        for tsv in self.tsv_boxes():
            boxes.append(Box(
                (tsv.lo[0] - t, tsv.lo[1] - t, z0),
                (tsv.hi[0] + t, tsv.hi[1] + t, z1)))
        return boxes

    def wire_boxes(self) -> dict:
        """Named wire boxes W1..W4 (full-depth traces along y)."""
        w = self.wire_width
        y0, y1 = 0.0, self.domain_hi[1]
        zb = self.bottom_layer_z
        zt = self.top_layer_z
        t1 = self.tsv_boxes()[0]
        t2 = self.tsv_boxes()[1]
        return {
            "w1": Box((t1.lo[0] - self.wire_gap - w, y0, zb[0]),
                      (t1.lo[0] - self.wire_gap, y1, zb[1])),
            "w2": Box((t2.hi[0] + self.wire_gap, y0, zb[0]),
                      (t2.hi[0] + self.wire_gap + w, y1, zb[1])),
            "w3": Box((t1.lo[0] - self.wire_gap - w, y0, zt[0]),
                      (t1.lo[0] - self.wire_gap, y1, zt[1])),
            "w4": Box((t1.hi[0] + self.wire_gap, y0, zt[0]),
                      (t1.hi[0] + self.wire_gap + w, y1, zt[1])),
        }

    def substrate_box(self) -> Box:
        z0, z1 = self.substrate_z
        x1, y1, _ = self.domain_hi
        return Box((0.0, 0.0, z0), (x1, y1, z1))

    def lateral_facets(self) -> list:
        """The 8 perturbable TSV lateral-wall facets (Section IV.B).

        Four facets per TSV; the roughness grouping merges the coplanar
        y-facets of the two TSVs into two large groups (see
        :func:`repro.variation.groups.merge_coplanar_facets`).
        """
        facets = []
        for idx, box in enumerate(self.tsv_boxes(), start=1):
            name = f"tsv{idx}"
            specs = [
                (f"{name}_x-", 0, box.lo[0], +1),
                (f"{name}_x+", 0, box.hi[0], -1),
                (f"{name}_y-", 1, box.lo[1], +1),
                (f"{name}_y+", 1, box.hi[1], -1),
            ]
            for fname, axis, coordinate, inward in specs:
                lo = list(box.lo)
                hi = list(box.hi)
                lo[axis] = coordinate
                hi[axis] = coordinate
                facets.append(FacetSpec(
                    name=fname,
                    axis=axis,
                    coordinate=coordinate,
                    lo=tuple(lo),
                    hi=tuple(hi),
                    inward=inward,
                ))
        return facets


def build_tsv_structure(design: TsvDesign = None) -> Structure:
    """Assemble the Fig. 3 structure.

    Paint order matters: substrate first, then the oxide liners, then
    the TSV metal (which overrides the liner core), then the wires.
    Contacts: ``tsv1``/``tsv2`` on the TSV top faces, ``w1``..``w4`` on
    the wire ends at y = 0.
    """
    if design is None:
        design = TsvDesign()
    tsv_boxes = design.tsv_boxes()
    liner_boxes = design.liner_boxes()
    wire_boxes = design.wire_boxes()
    substrate = design.substrate_box()

    boxes = tsv_boxes + liner_boxes + list(wire_boxes.values()) + [substrate]
    bps = [
        {0.0, design.domain_hi[0]},
        {0.0, design.domain_hi[1]},
        {0.0, design.domain_hi[2]},
    ]
    for box in boxes:
        for axis in range(3):
            bps[axis].update(box.breakpoints(axis))
    for axis in range(3):
        hi = design.domain_hi[axis]
        bad = [b for b in bps[axis] if b < -1e-12 or b > hi + 1e-12]
        if bad:
            raise GeometryError(
                f"design produces breakpoints outside the domain on axis "
                f"{axis}: {bad}")

    grid = CartesianGrid(
        axis_from_breakpoints(sorted(bps[0]), design.max_step),
        axis_from_breakpoints(sorted(bps[1]), design.max_step),
        axis_from_breakpoints(sorted(bps[2]), design.max_step),
    )
    structure = Structure(grid, background=silicon_dioxide("imd"))
    structure.add_box(doped_silicon(design.net_doping), substrate)
    liner = silicon_dioxide("liner")
    for box in liner_boxes:
        structure.add_box(liner, box)
    metal = copper("tsv_metal")
    for idx, box in enumerate(tsv_boxes, start=1):
        structure.add_box(metal, box)
        structure.add_contact_on_box_face(f"tsv{idx}", box, "z+")
    wire_metal = copper("wire_metal")
    for name, box in wire_boxes.items():
        structure.add_box(wire_metal, box)
        structure.add_contact_on_box_face(name, box, "y-")
    return structure
