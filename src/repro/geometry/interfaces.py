"""Material-interface discovery.

The stochastic surface-roughness models need the node sets lying on
metal/semiconductor or metal/insulator interfaces (those are the nodes
the CSV model perturbs), and the current extractor needs the dual faces
crossing an interface.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.structure import Structure
from repro.mesh.entities import LinkSet
from repro.mesh.grid import CartesianGrid


def facet_nodes(grid: CartesianGrid, axis: int, coordinate: float,
                lo=None, hi=None, tol: float = None) -> np.ndarray:
    """Flat ids of nodes on the plane ``axis = coordinate``.

    Optionally restricted to the axis-aligned rectangle ``[lo, hi]`` in
    the other two coordinates (pass full 3-vectors; the ``axis``
    component is ignored).
    """
    if axis not in (0, 1, 2):
        raise GeometryError(f"axis must be 0, 1 or 2, got {axis}")
    coords = grid.node_coords()
    if tol is None:
        span = coords[:, axis].max() - coords[:, axis].min()
        tol = 1e-9 * max(span, 1.0e-12)
    mask = np.abs(coords[:, axis] - coordinate) <= tol
    if lo is not None and hi is not None:
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        for other in range(3):
            if other == axis:
                continue
            mask &= (coords[:, other] >= lo[other] - tol)
            mask &= (coords[:, other] <= hi[other] + tol)
    ids = np.nonzero(mask)[0]
    if ids.size == 0:
        raise GeometryError(
            f"no nodes found on plane axis={axis} at {coordinate}")
    return ids


def metal_semiconductor_interface_nodes(structure: Structure) -> np.ndarray:
    """Flat ids of all ohmic-contact nodes (metal touching semiconductor)."""
    kinds = structure.node_kinds()
    ids = np.nonzero(kinds.ohmic_contact)[0]
    if ids.size == 0:
        raise GeometryError(
            "structure has no metal-semiconductor interface")
    return ids


def interface_links(structure: Structure, links: LinkSet,
                    from_mask: np.ndarray,
                    to_mask: np.ndarray) -> tuple:
    """Links crossing from one node class to another.

    Parameters
    ----------
    structure:
        The structure (for grid sizes only).
    links:
        Canonical link enumeration of the structure's grid.
    from_mask, to_mask:
        Per-node boolean masks.

    Returns
    -------
    (link_ids, orientation):
        ``link_ids`` are canonical link ids whose endpoints straddle the
        two classes; ``orientation`` is ``+1`` when ``node_a`` is in
        ``from_mask`` (flux along the link leaves the *from* side) and
        ``-1`` otherwise.
    """
    from_mask = np.asarray(from_mask, dtype=bool)
    to_mask = np.asarray(to_mask, dtype=bool)
    n = structure.grid.num_nodes
    if from_mask.shape != (n,) or to_mask.shape != (n,):
        raise GeometryError("masks must be per-node boolean arrays")
    a_from = from_mask[links.node_a] & to_mask[links.node_b]
    b_from = from_mask[links.node_b] & to_mask[links.node_a]
    link_ids = np.nonzero(a_from | b_from)[0]
    orientation = np.where(a_from[link_ids], 1, -1)
    if link_ids.size == 0:
        raise GeometryError("no links cross the requested interface")
    return link_ids, orientation
