"""Axis-aligned geometric primitives."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError


@dataclass(frozen=True)
class Box:
    """An axis-aligned box ``[lo, hi]`` in metres.

    The only primitive the Cartesian FVM needs: every material region of
    the paper's structures is a union of boxes aligned with grid lines.
    """

    lo: tuple
    hi: tuple

    def __post_init__(self) -> None:
        lo = tuple(float(v) for v in self.lo)
        hi = tuple(float(v) for v in self.hi)
        if len(lo) != 3 or len(hi) != 3:
            raise GeometryError("Box corners must be 3-vectors")
        if any(h <= l for l, h in zip(lo, hi)):
            raise GeometryError(
                f"Box must have positive extent in every axis: "
                f"lo={lo}, hi={hi}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    @property
    def size(self) -> tuple:
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def center(self) -> tuple:
        return tuple(0.5 * (l + h) for l, h in zip(self.lo, self.hi))

    @property
    def volume(self) -> float:
        sx, sy, sz = self.size
        return sx * sy * sz

    def contains(self, points: np.ndarray, tol: float = 0.0) -> np.ndarray:
        """Boolean mask of which ``(N, 3)`` points lie inside the box."""
        points = np.asarray(points, dtype=float)
        lo = np.asarray(self.lo) - tol
        hi = np.asarray(self.hi) + tol
        return np.all((points >= lo) & (points <= hi), axis=1)

    def overlaps(self, other: "Box") -> bool:
        """True when the interiors of the two boxes intersect."""
        return all(l1 < h2 and l2 < h1 for (l1, h1, l2, h2)
                   in zip(self.lo, self.hi, other.lo, other.hi))

    def breakpoints(self, axis: int) -> tuple:
        """The two coordinates this box contributes to an axis."""
        if axis not in (0, 1, 2):
            raise GeometryError(f"axis must be 0, 1 or 2, got {axis}")
        return (self.lo[axis], self.hi[axis])

    def face_box(self, face: str, thickness: float = 0.0) -> "Box":
        """A degenerate-thickness box covering one face, for node picking.

        ``face`` is one of ``x-``, ``x+``, ``y-``, ``y+``, ``z-``, ``z+``.
        The returned box spans the face and extends ``thickness`` away
        from the box on both sides (useful with a small tolerance).
        """
        axis_map = {"x": 0, "y": 1, "z": 2}
        if len(face) != 2 or face[0] not in axis_map or face[1] not in "+-":
            raise GeometryError(f"bad face spec {face!r}")
        axis = axis_map[face[0]]
        lo = list(self.lo)
        hi = list(self.hi)
        plane = self.hi[axis] if face[1] == "+" else self.lo[axis]
        # A literal zero thickness would be absorbed by floating-point
        # addition; use a sliver relative to the box scale instead.
        sliver = max(thickness, 1e-12 * max(*self.size, abs(plane)))
        lo[axis] = plane - sliver
        hi[axis] = plane + sliver
        return Box(tuple(lo), tuple(hi))
