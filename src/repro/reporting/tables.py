"""ASCII table rendering used by examples and benchmark harnesses."""

from __future__ import annotations


def format_table(headers, rows, title: str = "") -> str:
    """Render a list-of-rows table with right-aligned numeric columns.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row iterables; cells are formatted with ``str`` for
        text and ``.6g`` for floats.
    title:
        Optional title line.
    """
    headers = [str(h) for h in headers]
    text_rows = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(f"{cell:.6g}")
            else:
                cells.append(str(cell))
        text_rows.append(cells)
    widths = [len(h) for h in headers]
    for cells in text_rows:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in text_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def format_kv_block(pairs, title: str = "") -> str:
    """Render aligned ``key: value`` lines."""
    pairs = [(str(k), str(v)) for k, v in pairs]
    width = max((len(k) for k, _ in pairs), default=0)
    lines = [title] if title else []
    lines.extend(f"{k.ljust(width)} : {v}" for k, v in pairs)
    return "\n".join(lines)
