"""Plain-text reporting of tables and figure data series."""

from repro.reporting.tables import format_table, format_kv_block
from repro.reporting.series import Series, format_series

__all__ = ["format_table", "format_kv_block", "Series", "format_series"]
