"""Figure data series.

No plotting backend is assumed (the benchmark environment is headless);
figures are reproduced as printable / CSV-exportable data series whose
shape can be compared against the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Series:
    """One labelled x/y data series."""

    label: str
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x)
        self.y = np.asarray(self.y)
        if self.x.shape != self.y.shape:
            raise ValueError(
                f"series {self.label!r}: x {self.x.shape} and y "
                f"{self.y.shape} must match")

    def to_csv(self) -> str:
        lines = [f"x,{self.label}"]
        lines.extend(f"{xv:.9g},{yv:.9g}" for xv, yv in zip(self.x, self.y))
        return "\n".join(lines)


def format_series(series_list, x_label: str = "x",
                  title: str = "") -> str:
    """Tabulate multiple series sharing the same x grid."""
    if not series_list:
        return title
    x = series_list[0].x
    for s in series_list[1:]:
        if s.x.shape != x.shape or not np.allclose(s.x, x):
            raise ValueError("all series must share the same x grid")
    headers = [x_label] + [s.label for s in series_list]
    widths = [max(len(h), 12) for h in headers]
    lines = [title] if title else []
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for i in range(x.size):
        cells = [f"{x[i]:.6g}"] + [f"{s.y[i]:.6g}" for s in series_list]
        lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)
