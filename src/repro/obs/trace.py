"""Hierarchical span tracer with a context-manager API.

A :class:`Tracer` records a parent-linked tree of timed spans using
monotonic clocks (``time.perf_counter``); ``repro build --profile``
turns the tree into Chrome trace-event JSON (:mod:`repro.obs.profile`).
Activation is **thread-local**: ``with activate(tracer):`` installs a
tracer for the current thread only, so concurrent daemon builds never
interleave their span trees.  Library code calls the module-level
:func:`span` helper, which resolves to the active tracer or to the
shared :data:`NULL_TRACER` whose spans are free no-ops — tracing off is
the default and costs one thread-local lookup per call site.

Worker processes cannot share a tracer object; instead they measure
their own ``perf_counter`` windows and the parent ingests them with
:meth:`Tracer.add_span`.  On the platforms we run on,
``perf_counter`` is a system-wide monotonic clock, so worker times are
directly comparable with the parent's — the Chrome trace shows real
per-worker lanes.

This module is on the RL201 clock allowlist
(``CLOCK_EXEMPT_MODULES``): it may read wall clocks to anchor traces
to calendar time.  The flip side is the RL601 identity firewall —
nothing in ``repro.obs`` may be reached from ``canonical()`` or any
cache-key path.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time


class Span:
    """One timed node of the trace tree (times in ``perf_counter`` s)."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end",
                 "pid", "tid", "attrs")

    def __init__(self, name, span_id, parent_id, start, end=None,
                 pid=None, tid=None, attrs=None):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = end
        self.pid = os.getpid() if pid is None else pid
        self.tid = threading.get_ident() if tid is None else tid
        self.attrs = dict(attrs) if attrs else {}

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-ready form (ids, window, pid/tid, attrs)."""
        return {"name": self.name, "span_id": self.span_id,
                "parent_id": self.parent_id, "start": self.start,
                "end": self.end, "pid": self.pid, "tid": self.tid,
                "attrs": dict(self.attrs)}


class Tracer:
    """Collects a parent-linked span tree; safe across threads."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next_id = 1
        self._stack = threading.local()
        self.spans: list[Span] = []
        #: perf_counter origin: Chrome timestamps are relative to this.
        self.start = time.perf_counter()
        #: Wall-clock anchor for correlating traces with access logs.
        self.wall_start = time.time()

    def _current_stack(self) -> list:
        stack = getattr(self._stack, "spans", None)
        if stack is None:
            stack = self._stack.spans = []
        return stack

    def current_span(self):
        """Innermost open span on this thread, or ``None``."""
        stack = self._current_stack()
        return stack[-1] if stack else None

    def _new_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    @contextlib.contextmanager
    def span(self, name: str, **attrs):
        """Open a child span of this thread's innermost open span."""
        stack = self._current_stack()
        parent = stack[-1] if stack else None
        node = Span(name, self._new_id(),
                    parent.span_id if parent else None,
                    time.perf_counter(), attrs=attrs)
        stack.append(node)
        try:
            yield node
        finally:
            node.end = time.perf_counter()
            stack.pop()
            with self._lock:
                self.spans.append(node)

    def add_span(self, name: str, start: float, end: float, *,
                 parent_id=None, pid=None, tid=None,
                 attrs=None) -> Span:
        """Ingest a foreign span (e.g. measured in a worker process).

        ``start``/``end`` must already be in this machine's
        ``perf_counter`` domain.
        """
        node = Span(name, self._new_id(), parent_id, start, end,
                    pid=pid, tid=tid, attrs=attrs)
        with self._lock:
            self.spans.append(node)
        return node

    def totals(self, root=None) -> dict:
        """Seconds per span name, optionally restricted to a subtree.

        Only spans whose *name matches exactly* are summed together,
        so nested spans of different names never double-count.  With
        ``root`` (a :class:`Span` or a span id), only descendants of
        that span — and the span itself — contribute.
        """
        root_id = root.span_id if isinstance(root, Span) else root
        with self._lock:
            spans = list(self.spans)
        if root_id is not None:
            members = {root_id}
            # Parents are appended after their children; sweep until
            # the member set stops growing to resolve any order.
            grew = True
            while grew:
                grew = False
                for node in spans:
                    if node.span_id not in members \
                            and node.parent_id in members:
                        members.add(node.span_id)
                        grew = True
            spans = [node for node in spans if node.span_id in members]
        totals: dict[str, float] = {}
        for node in spans:
            totals[node.name] = totals.get(node.name, 0.0) \
                + node.duration
        return totals


class _NullSpan:
    """Inert stand-in so ``with span(...) as s: s.attrs[...]`` works."""

    __slots__ = ("attrs",)
    name = None
    span_id = None
    parent_id = None
    duration = 0.0

    def __init__(self):
        self.attrs = {}


class _NullTracer:
    """Free tracer: ``span()`` returns a shared no-op context."""

    enabled = False

    def __init__(self):
        self._span = _NullSpan()

    @contextlib.contextmanager
    def _null_context(self):
        yield self._span

    def span(self, name, **attrs):
        """No-op context manager; ignores everything."""
        return self._null_context()

    def current_span(self):
        """Always ``None`` — nothing is ever open."""
        return None

    def add_span(self, name, start, end, **kwargs):
        """Discard the foreign span."""
        return self._span

    def totals(self, root=None):
        """Always empty."""
        return {}


#: Shared inert tracer installed when nothing is being profiled.
NULL_TRACER = _NullTracer()

_ACTIVE = threading.local()


def get_tracer():
    """This thread's active tracer, or :data:`NULL_TRACER`."""
    return getattr(_ACTIVE, "tracer", None) or NULL_TRACER


@contextlib.contextmanager
def activate(tracer):
    """Install ``tracer`` as this thread's active tracer."""
    previous = getattr(_ACTIVE, "tracer", None)
    _ACTIVE.tracer = tracer
    try:
        yield tracer
    finally:
        _ACTIVE.tracer = previous


def span(name: str, **attrs):
    """Open a span on this thread's active tracer (no-op when idle)."""
    return get_tracer().span(name, **attrs)
