"""Metrics registry: named counters, gauges and latency histograms.

One process-wide vocabulary for every number the serving stack already
counts by hand — store hits, single-flight coalesces, warm-start
outcomes, GC evictions, factorization reuse.  Three metric kinds, all
stdlib-only and thread-safe:

* :class:`Counter` — monotonically increasing totals,
* :class:`Gauge` — last-write-wins instantaneous values,
* :class:`Histogram` — fixed-bucket latency distributions.

Metrics live in a :class:`MetricsRegistry`.  The module-level
:data:`REGISTRY` is the process-global default used by library code
(solver, pipeline, GC); the daemon additionally keeps a per-instance
registry so one process can host several daemons without cross-talk.

Snapshots are **deterministic**: metrics sorted by name, label sets
sorted by their rendered form, so the same totals always produce the
same snapshot (and the same Prometheus text) regardless of increment
interleaving.  ``repro.obs`` is execution-only by construction —
nothing here may be imported from identity code (``canonical()`` /
cache-key paths); RL601 enforces that contract.
"""

from __future__ import annotations

import re
import threading

#: Default latency buckets (seconds) for request/build histograms:
#: sub-millisecond store hits up to minute-scale cold builds.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


def _label_key(labels: dict) -> tuple:
    """Canonical hashable form of a label set: sorted (name, value)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared plumbing: name/help validation, per-series storage."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, registry) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help_text = help_text
        self._registry = registry
        self._lock = threading.Lock()
        self._series: dict[tuple, object] = {}

    def _enabled(self) -> bool:
        return self._registry is None or self._registry.enabled

    @staticmethod
    def _check_labels(labels: dict) -> None:
        for key in labels:
            if not _LABEL_RE.match(str(key)):
                raise ValueError(f"invalid label name {key!r}")

    def _zero(self):
        raise NotImplementedError

    def _series_for(self, labels: dict):
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                self._check_labels(labels)
                series = self._series[key] = self._zero()
            return series


class Counter(_Metric):
    """Monotonically increasing total, optionally labelled."""

    kind = "counter"

    def _zero(self):
        return [0.0]

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (>= 0) to the series selected by ``labels``."""
        if not self._enabled():
            return
        if amount < 0:
            raise ValueError("counters only go up")
        cell = self._series_for(labels)
        with self._lock:
            cell[0] += amount

    def value(self, **labels) -> float:
        """Current total of one label series (0.0 if never touched)."""
        with self._lock:
            cell = self._series.get(_label_key(labels))
            return cell[0] if cell is not None else 0.0

    def total(self) -> float:
        """Sum across every label series."""
        with self._lock:
            return sum(cell[0] for cell in self._series.values())

    def snapshot(self) -> dict:
        """Deterministic JSON-ready form (sorted label series)."""
        with self._lock:
            samples = [
                {"labels": dict(key), "value": cell[0]}
                for key, cell in sorted(self._series.items())
            ]
        return {"name": self.name, "type": self.kind,
                "help": self.help_text, "samples": samples}


class Gauge(_Metric):
    """Instantaneous value: set/inc/dec, last write wins."""

    kind = "gauge"

    def _zero(self):
        return [0.0]

    def set(self, value: float, **labels) -> None:
        """Overwrite the series selected by ``labels``."""
        if not self._enabled():
            return
        cell = self._series_for(labels)
        with self._lock:
            cell[0] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (may be negative) to the series."""
        if not self._enabled():
            return
        cell = self._series_for(labels)
        with self._lock:
            cell[0] += amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        """Subtract ``amount`` from the series."""
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        """Current value of one label series (0.0 if never touched)."""
        with self._lock:
            cell = self._series.get(_label_key(labels))
            return cell[0] if cell is not None else 0.0

    def snapshot(self) -> dict:
        """Deterministic JSON-ready form (sorted label series)."""
        with self._lock:
            samples = [
                {"labels": dict(key), "value": cell[0]}
                for key, cell in sorted(self._series.items())
            ]
        return {"name": self.name, "type": self.kind,
                "help": self.help_text, "samples": samples}


class Histogram(_Metric):
    """Fixed-bucket distribution of observations (latencies, sizes).

    Buckets are upper bounds in ascending order; an implicit ``+Inf``
    bucket catches the overflow.  The snapshot carries *cumulative*
    bucket counts (Prometheus convention) plus ``sum`` and ``count``.
    """

    kind = "histogram"

    def __init__(self, name, help_text, registry,
                 buckets=DEFAULT_LATENCY_BUCKETS) -> None:
        super().__init__(name, help_text, registry)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must strictly increase")
        self.buckets = bounds

    def _zero(self):
        # per-bucket counts + overflow, then sum, then count
        return {"counts": [0] * (len(self.buckets) + 1),
                "sum": 0.0, "count": 0}

    def observe(self, value: float, **labels) -> None:
        """Record one observation into the series selected by ``labels``."""
        if not self._enabled():
            return
        cell = self._series_for(labels)
        value = float(value)
        position = len(self.buckets)
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                position = index
                break
        with self._lock:
            cell["counts"][position] += 1
            cell["sum"] += value
            cell["count"] += 1

    def snapshot(self) -> dict:
        """Deterministic form with cumulative counts per series."""
        with self._lock:
            samples = []
            for key, cell in sorted(self._series.items()):
                cumulative, running = [], 0
                for count in cell["counts"]:
                    running += count
                    cumulative.append(running)
                samples.append({"labels": dict(key),
                                "cumulative": cumulative,
                                "sum": cell["sum"],
                                "count": cell["count"]})
        return {"name": self.name, "type": self.kind,
                "help": self.help_text,
                "buckets": list(self.buckets), "samples": samples}


class MetricsRegistry:
    """Thread-safe collection of named metrics.

    ``counter``/``gauge``/``histogram`` create-or-return by name
    (re-registration with a conflicting kind is an error), so
    instrumentation points scattered across modules can share series
    without import-order coupling.  ``enabled=False`` (or
    :meth:`disable`) turns every increment into a no-op — the knob the
    zero-overhead benchmark flips.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self.enabled = bool(enabled)

    def enable(self) -> None:
        """Resume recording increments and observations."""
        self.enabled = True

    def disable(self) -> None:
        """Drop every subsequent increment/observation (cheaply)."""
        self.enabled = False

    def _register(self, name, help_text, factory, kind):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if metric.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{metric.kind}, not {kind}")
                return metric
            metric = self._metrics[name] = factory()
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Create or fetch the counter called ``name``."""
        return self._register(
            name, help_text,
            lambda: Counter(name, help_text, self), "counter")

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Create or fetch the gauge called ``name``."""
        return self._register(
            name, help_text,
            lambda: Gauge(name, help_text, self), "gauge")

    def histogram(self, name: str, help_text: str = "",
                  buckets=DEFAULT_LATENCY_BUCKETS) -> Histogram:
        """Create or fetch the histogram called ``name``."""
        return self._register(
            name, help_text,
            lambda: Histogram(name, help_text, self, buckets),
            "histogram")

    def snapshot(self) -> list:
        """Deterministic list of per-metric snapshots, sorted by name."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return [metric.snapshot() for _, metric in metrics]

    def reset(self) -> None:
        """Forget every metric (tests and fresh daemon instances)."""
        with self._lock:
            self._metrics.clear()


#: Process-global default registry used by library instrumentation
#: (solver counters, pipeline build metrics, GC evictions).
REGISTRY = MetricsRegistry()


def counter(name: str, help_text: str = "") -> Counter:
    """Create or fetch a counter in the global :data:`REGISTRY`."""
    return REGISTRY.counter(name, help_text)


def gauge(name: str, help_text: str = "") -> Gauge:
    """Create or fetch a gauge in the global :data:`REGISTRY`."""
    return REGISTRY.gauge(name, help_text)


def histogram(name: str, help_text: str = "",
              buckets=DEFAULT_LATENCY_BUCKETS) -> Histogram:
    """Create or fetch a histogram in the global :data:`REGISTRY`."""
    return REGISTRY.histogram(name, help_text, buckets)
