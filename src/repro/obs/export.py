"""Prometheus text exposition (version 0.0.4) writer and parser.

:func:`prometheus_text` renders :class:`~repro.obs.metrics.MetricsRegistry`
snapshots into the canonical scrape format: one ``# HELP`` / ``# TYPE``
pair per metric, label values escaped (backslash, double quote,
newline), histograms expanded into cumulative ``_bucket{le=...}``
series plus ``_sum`` and ``_count``.  Output is deterministic — same
snapshot, same bytes.

:func:`parse_prometheus` is the matching small validating parser.  It
exists so the CI daemon-smoke job (and the tests) can assert the
``/metrics`` endpoint really speaks the format — TYPE-before-samples
ordering, bucket monotonicity, ``+Inf`` agreeing with ``_count`` —
without installing a Prometheus client.
"""

from __future__ import annotations

import math
import re

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$")
_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"')


def escape_label_value(value: str) -> str:
    """Escape a label value: backslash, double quote, newline."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def escape_help(text: str) -> str:
    """Escape a HELP string: backslash and newline."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Shortest faithful rendering: integers without a trailing .0."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _format_labels(labels: dict, extra=()) -> str:
    """Render ``{k="v",...}`` (sorted, escaped); '' when empty."""
    items = sorted((str(k), str(v)) for k, v in labels.items())
    items.extend(extra)
    if not items:
        return ""
    rendered = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in items)
    return "{" + rendered + "}"


def prometheus_text(snapshots: list) -> str:
    """Render one or more registry snapshots as exposition text.

    ``snapshots`` is a list of per-metric snapshot dicts (the
    concatenation of one or more ``MetricsRegistry.snapshot()``
    results); metrics are emitted sorted by name.
    """
    lines = []
    for metric in sorted(snapshots, key=lambda m: m["name"]):
        name, kind = metric["name"], metric["type"]
        lines.append(f"# HELP {name} {escape_help(metric['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        if kind in ("counter", "gauge"):
            for sample in metric["samples"]:
                labels = _format_labels(sample["labels"])
                value = _format_value(sample["value"])
                lines.append(f"{name}{labels} {value}")
        elif kind == "histogram":
            bounds = [_format_value(b) for b in metric["buckets"]]
            bounds.append("+Inf")
            for sample in metric["samples"]:
                for bound, count in zip(bounds, sample["cumulative"]):
                    labels = _format_labels(
                        sample["labels"], extra=[("le", bound)])
                    lines.append(
                        f"{name}_bucket{labels} "
                        f"{_format_value(count)}")
                labels = _format_labels(sample["labels"])
                lines.append(
                    f"{name}_sum{labels} "
                    f"{_format_value(sample['sum'])}")
                lines.append(
                    f"{name}_count{labels} "
                    f"{_format_value(sample['count'])}")
        else:
            raise ValueError(f"unknown metric type {kind!r}")
    return "\n".join(lines) + "\n"


def _unescape(value: str) -> str:
    return (value.replace("\\n", "\n").replace('\\"', '"')
            .replace("\\\\", "\\"))


def _parse_value(token: str) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    return float(token)


def _base_name(name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_prometheus(text: str) -> dict:
    """Parse and validate exposition text.

    Returns ``{metric_name: {"type", "help", "samples"}}`` where
    ``samples`` maps a sorted ``((label, value), ...)`` tuple — with
    ``le``/suffix folded in for histogram series — to a float.

    Raises ``ValueError`` on malformed lines, samples appearing before
    their ``# TYPE``, non-monotonic histogram buckets, or a ``+Inf``
    bucket that disagrees with ``_count``.
    """
    metrics: dict[str, dict] = {}
    for raw in text.splitlines():
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            metrics.setdefault(
                name, {"type": None, "help": None, "samples": {}})
            metrics[name]["help"] = _unescape(help_text)
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram",
                            "summary", "untyped"):
                raise ValueError(f"unknown TYPE {kind!r} for {name!r}")
            metrics.setdefault(
                name, {"type": None, "help": None, "samples": {}})
            if metrics[name]["type"] is not None:
                raise ValueError(f"duplicate TYPE for {name!r}")
            metrics[name]["type"] = kind
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed sample line: {line!r}")
        sample_name = match.group("name")
        base = _base_name(sample_name)
        owner = base if base in metrics else sample_name
        if owner not in metrics or metrics[owner]["type"] is None:
            raise ValueError(
                f"sample {sample_name!r} appears before its # TYPE")
        labels = {}
        body = match.group("labels")
        if body:
            consumed = 0
            for label in _LABEL_RE.finditer(body):
                labels[label.group("key")] = _unescape(
                    label.group("value"))
                consumed = label.end()
            if body[consumed:].strip(", "):
                raise ValueError(f"malformed labels in: {line!r}")
        sample_key = tuple(sorted(labels.items()))
        samples = metrics[owner]["samples"]
        full_key = (sample_name, sample_key)
        if full_key in samples:
            raise ValueError(f"duplicate sample: {line!r}")
        samples[full_key] = _parse_value(match.group("value"))
    _validate_histograms(metrics)
    return metrics


def _validate_histograms(metrics: dict) -> None:
    for name, metric in metrics.items():
        if metric["type"] != "histogram":
            continue
        series: dict[tuple, list] = {}
        counts: dict[tuple, float] = {}
        for (sample_name, labels), value in metric["samples"].items():
            if sample_name == f"{name}_bucket":
                bare = tuple(item for item in labels
                             if item[0] != "le")
                le = dict(labels).get("le")
                if le is None:
                    raise ValueError(
                        f"{name}_bucket sample missing le label")
                series.setdefault(bare, []).append(
                    (_parse_value(le), value))
            elif sample_name == f"{name}_count":
                counts[labels] = value
        for bare, buckets in series.items():
            ordered = sorted(buckets)
            values = [count for _, count in ordered]
            if values != sorted(values):
                raise ValueError(
                    f"{name} buckets are not monotonic for {bare!r}")
            if not ordered or ordered[-1][0] != math.inf:
                raise ValueError(f"{name} is missing a +Inf bucket")
            total = counts.get(bare)
            if total is not None and ordered[-1][1] != total:
                raise ValueError(
                    f"{name} +Inf bucket ({ordered[-1][1]}) disagrees "
                    f"with _count ({total})")
