"""Structured JSONL event log for the daemon (``--access-log``).

One JSON object per line, append-only, thread-safe.  Each record gets
a wall-clock ``ts`` (unix seconds) and an ``event`` kind; everything
else is caller-provided and must be JSON-serializable.  Keys are
written sorted so identical events serialize identically.

This module is on the RL201 clock allowlist
(``CLOCK_EXEMPT_MODULES``): access-log timestamps are wall-clock by
design, and — like everything in ``repro.obs`` — they are
execution-only data that never feeds a cache key (RL601).
"""

from __future__ import annotations

import json
import threading
import time


class EventLog:
    """Append-only JSONL writer with per-line flush.

    Opened lazily on first :meth:`write`, so constructing a daemon
    with an access-log path does not touch the filesystem until a
    request arrives.  Use as a context manager or call :meth:`close`.
    """

    def __init__(self, path) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._handle = None

    def write(self, event: str, **fields) -> dict:
        """Append one record; returns the dict that was written."""
        record = {"ts": time.time(), "event": str(event), **fields}
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":"))
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()
        return record

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def read_events(path) -> list:
    """Parse a JSONL event log back into a list of dicts (tests)."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
