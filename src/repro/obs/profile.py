"""Chrome trace-event export for :class:`~repro.obs.trace.Tracer`.

Converts a recorded span tree into the Trace Event Format's JSON
array form — ``"X"`` (complete) events with microsecond ``ts``/``dur``
relative to the tracer's origin, real ``pid``/``tid`` lanes so
per-worker spans from ``ParallelWaveEvaluator`` show up as separate
rows.  Load the file in ``chrome://tracing`` or Perfetto.

:func:`span_coverage` is the acceptance metric for the profile
surface: the fraction of a root span's wall time accounted for by its
direct children.  The build pipeline's tree is expected to cover
>= 95% of ``repro build`` wall time (asserted in tests).
"""

from __future__ import annotations

import json


def chrome_trace_events(tracer) -> list:
    """Trace Event Format dicts (one ``"X"`` event per closed span)."""
    events = []
    for node in sorted(tracer.spans, key=lambda s: (s.start, s.span_id)):
        if node.end is None:
            continue
        args = {"span_id": node.span_id}
        if node.parent_id is not None:
            args["parent_id"] = node.parent_id
        args.update(node.attrs)
        events.append({
            "name": node.name,
            "ph": "X",
            "ts": (node.start - tracer.start) * 1e6,
            "dur": node.duration * 1e6,
            "pid": node.pid,
            "tid": node.tid,
            "args": args,
        })
    return events


def chrome_trace_document(tracer) -> dict:
    """Full JSON-object form with metadata alongside the events."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "wall_start_unix_s": tracer.wall_start,
        },
    }


def write_chrome_trace(path, tracer) -> None:
    """Serialize the tracer's spans to ``path`` as Chrome trace JSON."""
    document = chrome_trace_document(tracer)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")


def find_root(tracer, name: str = None):
    """First parentless closed span (optionally matching ``name``)."""
    candidates = [node for node in tracer.spans
                  if node.parent_id is None and node.end is not None
                  and (name is None or node.name == name)]
    if not candidates:
        return None
    return min(candidates, key=lambda s: s.start)


def span_coverage(tracer, root=None) -> float:
    """Fraction of ``root``'s duration covered by its direct children.

    Child windows are clipped to the root's and merged, so overlapping
    children (parallel lanes) never count twice.  Returns 0.0 when the
    root is missing or has zero duration.
    """
    if root is None:
        root = find_root(tracer)
    if root is None or not root.duration:
        return 0.0
    windows = []
    for node in tracer.spans:
        if node.parent_id != root.span_id or node.end is None:
            continue
        start = max(node.start, root.start)
        end = min(node.end, root.end)
        if end > start:
            windows.append((start, end))
    covered, cursor = 0.0, None
    for start, end in sorted(windows):
        if cursor is None or start > cursor:
            covered += end - start
            cursor = end
        elif end > cursor:
            covered += end - cursor
            cursor = end
    return covered / root.duration
