"""repro.obs — unified tracing, metrics and profiling layer.

One execution-only observability vocabulary from the solver kernels up
to the daemon's ``/metrics`` endpoint (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.metrics` — named counters, gauges and fixed-bucket
  latency histograms with deterministic snapshots; the process-global
  :data:`REGISTRY` absorbs the ad-hoc counters previously scattered
  across the store, daemon, GC and solver layers.
* :mod:`repro.obs.trace` — hierarchical span tracer (context-manager
  API, monotonic clocks, thread-local activation) feeding
  ``repro build --profile`` Chrome trace output.
* :mod:`repro.obs.export` — Prometheus text exposition writer plus the
  small validating parser CI uses against ``GET /metrics``.
* :mod:`repro.obs.profile` — Chrome trace-event JSON export and the
  span-coverage acceptance metric.
* :mod:`repro.obs.log` — structured JSONL event log backing the
  daemon's ``--access-log``.

The package is stdlib-only and **execution-only by construction**:
RL601 (``repro.lint``) keeps every ``repro.obs`` import out of
``canonical()``/cache-key paths, so instrumentation can never change a
cache key or a stored artifact.  Exports resolve lazily (PEP 562),
mirroring :mod:`repro.daemon`.
"""

from __future__ import annotations

import importlib

#: Lazy export table: public name -> defining module.  ``__all__`` is
#: derived from it and RL5xx checks every entry resolves.
_EXPORTS = {
    "MetricsRegistry": "repro.obs.metrics",
    "Counter": "repro.obs.metrics",
    "Gauge": "repro.obs.metrics",
    "Histogram": "repro.obs.metrics",
    "REGISTRY": "repro.obs.metrics",
    "counter": "repro.obs.metrics",
    "gauge": "repro.obs.metrics",
    "histogram": "repro.obs.metrics",
    "DEFAULT_LATENCY_BUCKETS": "repro.obs.metrics",
    "Span": "repro.obs.trace",
    "Tracer": "repro.obs.trace",
    "NULL_TRACER": "repro.obs.trace",
    "get_tracer": "repro.obs.trace",
    "activate": "repro.obs.trace",
    "span": "repro.obs.trace",
    "prometheus_text": "repro.obs.export",
    "parse_prometheus": "repro.obs.export",
    "chrome_trace_events": "repro.obs.profile",
    "chrome_trace_document": "repro.obs.profile",
    "write_chrome_trace": "repro.obs.profile",
    "span_coverage": "repro.obs.profile",
    "find_root": "repro.obs.profile",
    "EventLog": "repro.obs.log",
    "read_events": "repro.obs.log",
}

__all__ = [*_EXPORTS]


def __getattr__(name: str):
    """Resolve a public name through the lazy export table (PEP 562)."""
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    """Advertise lazy exports alongside whatever already resolved."""
    return sorted(set(globals()) | set(_EXPORTS))
