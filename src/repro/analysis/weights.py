"""wPFA weights from the nominal solution (paper eq. 9).

For the coupled-current problem the influence of a doping node is
proportional to the nominal current it carries:
``w_i = J0_i * nodeV_i``.  For geometric (surface) perturbations the
natural analogue — and the original wPFA construction of the BEM
capacitance work — is the panel charge, i.e. the local dielectric flux.

On the FVM mesh both are realized per node as the mean |flux| over the
node's incident links scaled by the dual volume: the link current for
doping groups, the Gauss (D-field) flux for geometry groups.  Only the
*relative* weights within a group matter, so the overall scale is
irrelevant (wpfa_reduce normalizes internally).
"""

from __future__ import annotations

import numpy as np

from repro.errors import StochasticError
from repro.solver.ac import ACSolution


def _node_mean_link_magnitude(solution: ACSolution, node_ids: np.ndarray,
                              link_values: np.ndarray) -> np.ndarray:
    """Mean |link value| over the links incident to each node."""
    links = solution.geometry.links
    n = solution.structure.grid.num_nodes
    totals = np.zeros(n)
    counts = np.zeros(n)
    mags = np.abs(link_values)
    np.add.at(totals, links.node_a, mags)
    np.add.at(totals, links.node_b, mags)
    np.add.at(counts, links.node_a, 1.0)
    np.add.at(counts, links.node_b, 1.0)
    counts[counts == 0.0] = 1.0
    return (totals / counts)[node_ids]


def nominal_weights(problem, solution: ACSolution = None) -> dict:
    """wPFA weight vectors for every group of ``problem``.

    Parameters
    ----------
    problem:
        A :class:`~repro.analysis.problem.VariationalProblem`.
    solution:
        Optional pre-computed nominal solution (saves one solve).

    Returns
    -------
    dict
        ``{group name: (n,) weights}``.
    """
    if solution is None:
        solution = problem.nominal_solution()
    node_volumes = solution.geometry.node_volumes
    current = solution.link_total_current()
    flux = solution.link_dielectric_flux()

    weights = {}
    for group in problem.groups:
        if group.kind == "doping":
            local = _node_mean_link_magnitude(solution, group.node_ids,
                                              current)
        elif group.kind == "geometry":
            local = _node_mean_link_magnitude(solution, group.node_ids,
                                              flux)
        else:
            raise StochasticError(f"unknown group kind {group.kind!r}")
        weights[group.name] = local * node_volumes[group.node_ids]
    return weights
