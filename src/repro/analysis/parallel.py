"""Process-parallel sample evaluation.

The paper's conclusion names parallel computing as the planned remedy
for the "several hours" a typical variational run costs.  Both
stochastic drivers are embarrassingly parallel over samples, so this
module fans the deterministic solves out over worker processes; the
adaptive engine's per-wave batches go through the same pool via
:class:`ParallelWaveEvaluator`.

Workers receive a *picklable problem builder* (e.g.
``functools.partial(table1_problem, "both", config)``) rather than the
problem itself: each worker builds its own solver once, amortizing the
mesh/structure setup over its whole chunk — the natural layout for the
paper's per-sample independence.  The per-worker problem also carries
the solver's per-sample and per-contact-set caches, so within a chunk a
multi-port problem factorizes each sample once and reuses that factor
across all of its port drives (see :meth:`AVSolver.solve_ports`).

Per-worker random streams are derived with
``np.random.SeedSequence(seed).spawn(num_workers)`` rather than
``seed + k`` offsets: offset seeds collide across runs (worker 1 of
``seed=0`` would replay worker 0 of ``seed=1``), while spawned child
sequences are statistically independent for every ``(seed, k)`` pair.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.errors import StochasticError
from repro.obs.trace import get_tracer
from repro.stochastic.montecarlo import MonteCarloResult
from repro.stochastic.sscm import SSCMResult
from repro.stochastic.hermite import HermiteBasis
from repro.stochastic.pce import QuadraticPCE
from repro.stochastic.sparse_grid import smolyak_sparse_grid
from repro.variation.random_field import stable_cholesky

_WORKER_STATE = {}


def _worker_init(problem_builder):
    problem = problem_builder()
    factors = {group.name: stable_cholesky(group.covariance)
               for group in problem.groups}
    _WORKER_STATE["problem"] = problem
    _WORKER_STATE["factors"] = factors


def _worker_mc_chunk(args):
    seed, count = args
    problem = _WORKER_STATE["problem"]
    factors = _WORKER_STATE["factors"]
    rng = np.random.default_rng(seed)
    values = []
    for _ in range(count):
        xi = {group.name: factors[group.name]
              @ rng.standard_normal(group.size)
              for group in problem.groups}
        values.append(problem.evaluate_sample(xi))
    return np.vstack(values)


def _worker_collocation_chunk(args):
    matrices, points = args
    problem = _WORKER_STATE["problem"]
    values = []
    for zeta in points:
        offset = 0
        xi = {}
        for name, matrix in matrices:
            width = matrix.shape[1]
            xi[name] = matrix @ zeta[offset:offset + width]
            offset += width
        values.append(problem.evaluate_sample(xi))
    return np.vstack(values)


def _wave_worker_init(problem_builder, reduced_space):
    problem = problem_builder()
    _WORKER_STATE["problem"] = problem
    _WORKER_STATE["reduced_space"] = reduced_space


def _worker_wave_chunk(points):
    problem = _WORKER_STATE["problem"]
    reduced_space = _WORKER_STATE["reduced_space"]
    values = []
    for zeta in points:
        # Exactly the serial driver's per-point path
        # (reduced_space.split then evaluate_sample), so a chunk of
        # size one is bitwise-identical to the serial evaluation.
        values.append(problem.evaluate_sample(reduced_space.split(zeta)))
    return np.vstack(values)


def _worker_wave_chunk_traced(points):
    # Same arithmetic as _worker_wave_chunk, plus a perf_counter
    # window the parent ingests as a per-worker span.  perf_counter is
    # a system-wide monotonic clock on our platforms, so the window is
    # directly comparable with the parent tracer's origin.
    start = time.perf_counter()
    block = _worker_wave_chunk(points)
    end = time.perf_counter()
    return block, {"start": start, "end": end, "pid": os.getpid(),
                   "points": int(points.shape[0])}


def _default_workers() -> int:
    return max(1, min(8, os.cpu_count() or 1))


class ParallelWaveEvaluator:
    """Persistent-pool ``solve_many`` hook for adaptive wave batches.

    The adaptive driver hands each refinement wave's never-seen
    collocation points to its ``solve_many`` hook in one call; this
    class is that hook backed by a long-lived
    :class:`~concurrent.futures.ProcessPoolExecutor`.  Workers build
    the problem once (amortizing mesh/solver setup over the whole
    refinement run, and keeping the per-sample factorization caches
    warm within a chunk) and evaluate points with *exactly* the serial
    driver's arithmetic — ``reduced_space.split`` followed by
    ``evaluate_sample`` — so the fan-out is bitwise-identical to the
    serial path, merely faster.

    Parameters
    ----------
    problem_builder:
        Zero-argument picklable callable rebuilding the
        :class:`~repro.analysis.problem.VariationalProblem` in each
        worker (e.g. ``functools.partial`` over an experiment preset,
        or a :meth:`~repro.serving.spec.ProblemSpec.build_problem`
        bound method).
    reduced_space:
        The parent's :class:`~repro.stochastic.reduction.ReducedSpace`
        (the reduction is *not* recomputed per worker — every process
        maps collocation points through the same matrices).
    num_workers:
        Process count (default: up to 8, bounded by the CPU count).

    Notes
    -----
    Use as a context manager, or call :meth:`close` when the build is
    done; the analysis runner does this automatically when it owns the
    evaluator.
    """

    def __init__(self, problem_builder, reduced_space,
                 num_workers: int = None):
        if num_workers is None:
            num_workers = _default_workers()
        if num_workers < 1:
            raise StochasticError(
                f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = int(num_workers)
        self.reduced_space = reduced_space
        self._pool = ProcessPoolExecutor(
            max_workers=self.num_workers,
            initializer=_wave_worker_init,
            initargs=(problem_builder, reduced_space))

    def __call__(self, points) -> np.ndarray:
        """Evaluate ``(n, dim)`` points; returns ``(n, outputs)`` rows.

        Points are split into at most ``num_workers`` contiguous
        chunks; per-point results are order-preserving, so the stacked
        block is bitwise-identical to a serial row loop.  An empty
        batch returns shape ``(0, 0)`` — the output width is unknown
        until a point has been solved, and the driver never forwards
        empty waves anyway.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != self.reduced_space.dim:
            raise StochasticError(
                f"points must be (n, {self.reduced_space.dim}), "
                f"got {points.shape}")
        if points.shape[0] == 0:
            return np.zeros((0, 0))
        chunks = [chunk for chunk in
                  np.array_split(points,
                                 min(self.num_workers, points.shape[0]))
                  if chunk.shape[0]]
        tracer = get_tracer()
        if not tracer.enabled:
            blocks = list(self._pool.map(_worker_wave_chunk, chunks))
            return np.vstack(blocks)
        # Traced path: identical values, plus one ingested span per
        # worker chunk parented under this call's span so the Chrome
        # trace shows real per-worker lanes.
        with tracer.span("parallel_wave", chunks=len(chunks),
                         points=int(points.shape[0])) as parent:
            results = list(self._pool.map(_worker_wave_chunk_traced,
                                          chunks))
            for _, info in results:
                tracer.add_span(
                    "worker_chunk", info["start"], info["end"],
                    parent_id=parent.span_id, pid=info["pid"], tid=0,
                    attrs={"points": info["points"]})
        return np.vstack([block for block, _ in results])

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._pool.shutdown()

    def __enter__(self) -> "ParallelWaveEvaluator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def worker_seed_sequences(seed: int, num_workers: int) -> list:
    """Independent per-worker seed sequences for a base ``seed``.

    Spawned children of ``SeedSequence(seed)`` never collide across
    base seeds, unlike the ``seed + k`` scheme this replaced (there,
    ``seed=0``/worker 1 replayed ``seed=1``/worker 0).
    """
    return np.random.SeedSequence(seed).spawn(num_workers)


def run_mc_parallel(problem_builder, num_runs: int, seed: int = 0,
                    num_workers: int = None,
                    output_names=None) -> MonteCarloResult:
    """Monte Carlo with worker processes (full-covariance sampling).

    Parameters
    ----------
    problem_builder:
        Zero-argument picklable callable returning the
        :class:`~repro.analysis.problem.VariationalProblem` (e.g. a
        ``functools.partial`` over an experiment preset).
    num_runs:
        Total sample count, split evenly across workers.
    seed:
        Base seed; worker ``k`` draws from the ``k``-th spawned child
        of ``np.random.SeedSequence(seed)``, so results are
        reproducible for a fixed worker count and distinct base seeds
        never share a stream.
    num_workers:
        Process count (default: up to 8, bounded by the CPU count).
    """
    if num_runs < 2:
        raise StochasticError(f"num_runs must be >= 2, got {num_runs}")
    if num_workers is None:
        num_workers = _default_workers()
    worker_seeds = worker_seed_sequences(seed, num_workers)
    chunks = []
    base = num_runs // num_workers
    remainder = num_runs % num_workers
    for k in range(num_workers):
        count = base + (1 if k < remainder else 0)
        if count:
            chunks.append((worker_seeds[k], count))

    start = time.perf_counter()
    with ProcessPoolExecutor(max_workers=num_workers,
                             initializer=_worker_init,
                             initargs=(problem_builder,)) as pool:
        blocks = list(pool.map(_worker_mc_chunk, chunks))
    wall = time.perf_counter() - start
    values = np.vstack(blocks)
    return MonteCarloResult(
        mean=values.mean(axis=0),
        std=values.std(axis=0, ddof=1),
        num_runs=values.shape[0],
        wall_time=wall,
        output_names=list(output_names) if output_names else None,
    )


def run_sscm_parallel(problem_builder, reduced_space, num_workers: int = None,
                      output_names=None, level: int = 2) -> SSCMResult:
    """Sparse-grid collocation with worker processes.

    The reduction (which needs one nominal solve) is performed by the
    caller; workers only evaluate collocation points.
    """
    if num_workers is None:
        num_workers = _default_workers()
    grid = smolyak_sparse_grid(reduced_space.dim, level=level)
    matrices = [(rg.group.name, rg.reduction.matrix)
                for rg in reduced_space.groups]
    point_chunks = np.array_split(grid.points, num_workers)
    args = [(matrices, chunk) for chunk in point_chunks if len(chunk)]

    start = time.perf_counter()
    with ProcessPoolExecutor(max_workers=num_workers,
                             initializer=_worker_init,
                             initargs=(problem_builder,)) as pool:
        blocks = list(pool.map(_worker_collocation_chunk, args))
    wall = time.perf_counter() - start
    values = np.vstack(blocks)

    basis = HermiteBasis(reduced_space.dim, order=2)
    pce = QuadraticPCE.fit_quadrature(basis, grid.points, grid.weights,
                                      values, output_names=output_names)
    return SSCMResult(pce=pce, num_runs=grid.num_points, wall_time=wall,
                      grid=grid)
