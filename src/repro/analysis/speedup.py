"""Speedup accounting (the paper's "about 10X" claim)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SpeedupReport:
    """Run-count and wall-time ratios of SSCM vs Monte Carlo."""

    mc_runs: int
    sscm_runs: int
    mc_time: float
    sscm_time: float
    dim: int

    @property
    def run_ratio(self) -> float:
        return self.mc_runs / max(self.sscm_runs, 1)

    @property
    def time_ratio(self) -> float:
        if self.sscm_time <= 0.0:
            return float("nan")
        return self.mc_time / self.sscm_time

    def render(self) -> str:
        return (f"d={self.dim}: SSCM {self.sscm_runs} runs "
                f"({self.sscm_time:.1f}s) vs MC {self.mc_runs} runs "
                f"({self.mc_time:.1f}s) -> run speedup "
                f"{self.run_ratio:.1f}x, time speedup "
                f"{self.time_ratio:.1f}x")
