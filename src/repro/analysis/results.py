"""Result comparison: the MC-vs-SSCM tables of the paper."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StochasticError


@dataclass
class ComparisonTable:
    """Side-by-side MC / SSCM statistics for one experiment.

    The layout mirrors the paper's Tables I and II: per QoI row, the
    mean and standard deviation under both methods plus relative errors
    of SSCM against the MC reference.
    """

    names: list
    mc_mean: np.ndarray
    mc_std: np.ndarray
    sscm_mean: np.ndarray
    sscm_std: np.ndarray
    mc_runs: int
    sscm_runs: int
    mc_time: float = float("nan")
    sscm_time: float = float("nan")
    unit_scale: float = 1.0
    unit_label: str = ""

    @classmethod
    def from_results(cls, mc_result, analysis_result, unit_scale=1.0,
                     unit_label="") -> "ComparisonTable":
        names = (mc_result.output_names
                 or analysis_result.sscm.output_names)
        if names is None:
            raise StochasticError("results carry no output names")
        return cls(
            names=list(names),
            mc_mean=np.asarray(mc_result.mean),
            mc_std=np.asarray(mc_result.std),
            sscm_mean=np.asarray(analysis_result.mean),
            sscm_std=np.asarray(analysis_result.std),
            mc_runs=mc_result.num_runs,
            sscm_runs=analysis_result.num_runs,
            mc_time=mc_result.wall_time,
            sscm_time=analysis_result.sscm.wall_time,
            unit_scale=unit_scale,
            unit_label=unit_label,
        )

    # ------------------------------------------------------------------
    def mean_errors(self) -> np.ndarray:
        """Relative SSCM-vs-MC mean error per QoI."""
        denom = np.where(np.abs(self.mc_mean) > 0.0,
                         np.abs(self.mc_mean), 1.0)
        return np.abs(self.sscm_mean - self.mc_mean) / denom

    def std_errors(self) -> np.ndarray:
        """Relative SSCM-vs-MC std error per QoI."""
        denom = np.where(np.abs(self.mc_std) > 0.0,
                         np.abs(self.mc_std), 1.0)
        return np.abs(self.sscm_std - self.mc_std) / denom

    @property
    def speedup(self) -> float:
        """MC-to-SSCM run-count ratio (the paper's ~10x)."""
        return self.mc_runs / max(self.sscm_runs, 1)

    # ------------------------------------------------------------------
    def render(self, title: str = "") -> str:
        """ASCII rendering in the shape of the paper's tables."""
        scale = self.unit_scale
        unit = f" [{self.unit_label}]" if self.unit_label else ""
        header = (f"{'quantity':<14}{'MC mean':>12}{'MC std':>12}"
                  f"{'SSCM mean':>12}{'SSCM std':>12}"
                  f"{'err mean':>10}{'err std':>10}")
        lines = []
        if title:
            lines.append(title + unit)
        lines.append(header)
        lines.append("-" * len(header))
        em = self.mean_errors()
        es = self.std_errors()
        for i, name in enumerate(self.names):
            lines.append(
                f"{name:<14}"
                f"{self.mc_mean[i] / scale:>12.4f}"
                f"{self.mc_std[i] / scale:>12.4f}"
                f"{self.sscm_mean[i] / scale:>12.4f}"
                f"{self.sscm_std[i] / scale:>12.4f}"
                f"{100 * em[i]:>9.2f}%"
                f"{100 * es[i]:>9.2f}%")
        lines.append(
            f"runs: MC={self.mc_runs}, SSCM={self.sscm_runs} "
            f"(speedup {self.speedup:.1f}x); wall: MC={self.mc_time:.1f}s, "
            f"SSCM={self.sscm_time:.1f}s")
        return "\n".join(lines)
