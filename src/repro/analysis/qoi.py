"""Quantity-of-interest extractors for the paper's two experiments."""

from __future__ import annotations

import numpy as np

from repro.extraction.capacitance import (
    capacitance_column,
    conductor_mask_for_contact,
)
from repro.extraction.current import metal_semiconductor_current


def interface_current_magnitude(contact: str = None):
    """QoI of Table I: |J| through the metal-semiconductor interface.

    Parameters
    ----------
    contact:
        Optional contact name; when given, only the interface of the
        conductor holding that contact is integrated (the two plugs of
        example A carry equal and opposite interface currents, so
        summing both would cancel).

    Returns
    -------
    callable
        ``ACSolution -> (1,) array`` with the current magnitude [A].
    """

    def extract(solution) -> np.ndarray:
        restrict = None
        if contact is not None:
            mask = conductor_mask_for_contact(
                solution.structure, solution.geometry.links, contact)
            restrict = np.nonzero(mask)[0]
        current = metal_semiconductor_current(solution,
                                              restrict_nodes=restrict)
        return np.array([abs(current)])

    return extract


def capacitance_column_qoi(driven_contact: str, contacts: list):
    """QoI of Table II: one column of the Maxwell capacitance matrix.

    Returns the *real* parts [F] in the order of ``contacts`` —
    positive self capacitance, negative couplings, matching the sign
    convention of the paper's Table II.
    """
    contacts = list(contacts)

    def extract(solution) -> np.ndarray:
        column = capacitance_column(solution, driven_contact,
                                    contacts=contacts)
        return np.array([column[name].real for name in contacts])

    return extract
