"""Quantity-of-interest extractors for the paper's two experiments.

Two families:

* single-solution extractors (``ACSolution -> 1-D array``) used with a
  :class:`~repro.analysis.problem.VariationalProblem` in its classic
  one-excitation mode;
* multi-port extractors (``{port: ACSolution} -> 1-D array``) used in
  the problem's multi-port mode, where all unit port drives of a sample
  come out of a single batched factorization
  (:meth:`AVSolver.solve_ports`) — :func:`per_port_qoi` lifts any
  single-solution extractor, :func:`capacitance_matrix_qoi` reads the
  full Maxwell matrix.
"""

from __future__ import annotations

import numpy as np

from repro.extraction.capacitance import (
    capacitance_column,
    conductor_mask_for_contact,
)
from repro.extraction.current import metal_semiconductor_current


def interface_current_magnitude(contact: str = None):
    """QoI of Table I: |J| through the metal-semiconductor interface.

    Parameters
    ----------
    contact:
        Optional contact name; when given, only the interface of the
        conductor holding that contact is integrated (the two plugs of
        example A carry equal and opposite interface currents, so
        summing both would cancel).

    Returns
    -------
    callable
        ``ACSolution -> (1,) array`` with the current magnitude [A].
    """

    def extract(solution) -> np.ndarray:
        restrict = None
        if contact is not None:
            mask = conductor_mask_for_contact(
                solution.structure, solution.geometry.links, contact)
            restrict = np.nonzero(mask)[0]
        current = metal_semiconductor_current(solution,
                                              restrict_nodes=restrict)
        return np.array([abs(current)])

    return extract


def capacitance_column_qoi(driven_contact: str, contacts: list):
    """QoI of Table II: one column of the Maxwell capacitance matrix.

    Returns the *real* parts [F] in the order of ``contacts`` —
    positive self capacitance, negative couplings, matching the sign
    convention of the paper's Table II.
    """
    contacts = list(contacts)

    def extract(solution) -> np.ndarray:
        column = capacitance_column(solution, driven_contact,
                                    contacts=contacts)
        return np.array([column[name].real for name in contacts])

    return extract


def per_port_qoi(single_qoi, ports):
    """Lift a single-solution QoI to multi-port mode.

    Applies ``single_qoi`` to the solution of every unit port drive and
    concatenates the results in ``ports`` order — e.g. Table I's
    interface current under each plug's drive from one factorization.

    Returns
    -------
    callable
        ``{port: ACSolution} -> (P * len(single QoI),) array``.
    """
    ports = list(ports)

    def extract(solutions: dict) -> np.ndarray:
        return np.concatenate([
            np.atleast_1d(np.asarray(single_qoi(solutions[port]),
                                     dtype=float))
            for port in ports])

    return extract


def capacitance_matrix_qoi(contacts: list):
    """QoI: the full Maxwell capacitance matrix from unit port drives.

    For use in multi-port mode with ``ports == contacts``: column ``j``
    is read from the solution driving contact ``j``, so the whole
    ``P x P`` matrix costs one factorization.  Values are the real
    parts [F], flattened row-major (``C[i, j]`` = charge on ``i`` per
    volt on ``j``); labels come from
    :func:`capacitance_matrix_names`.
    """
    contacts = list(contacts)

    def extract(solutions: dict) -> np.ndarray:
        matrix = np.zeros((len(contacts), len(contacts)))
        for j, driven in enumerate(contacts):
            column = capacitance_column(solutions[driven], driven,
                                        contacts=contacts)
            matrix[:, j] = [column[name].real for name in contacts]
        return matrix.ravel()

    return extract


def capacitance_matrix_names(contacts: list) -> list:
    """Row-major labels matching :func:`capacitance_matrix_qoi`."""
    return [f"C_{row}_{col}" for row in contacts for col in contacts]
