"""Pipeline runners: SSCM and Monte Carlo on a VariationalProblem."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stochastic.montecarlo import MonteCarloResult, run_monte_carlo
from repro.stochastic.reduction import ReducedSpace, reduce_groups
from repro.stochastic.sscm import SSCMResult, run_sscm
from repro.variation.random_field import stable_cholesky
from repro.analysis.problem import VariationalProblem
from repro.analysis.weights import nominal_weights


@dataclass
class AnalysisResult:
    """SSCM pipeline output with the reduction bookkeeping."""

    sscm: SSCMResult
    reduced_space: ReducedSpace

    @property
    def mean(self) -> np.ndarray:
        return self.sscm.mean

    @property
    def std(self) -> np.ndarray:
        return self.sscm.std

    @property
    def num_runs(self) -> int:
        return self.sscm.num_runs

    @property
    def dim(self) -> int:
        return self.reduced_space.dim

    def summary(self) -> str:
        return (f"SSCM d={self.dim}, runs={self.num_runs}, "
                f"{self.reduced_space.summary()}")

    def reduction_metadata(self) -> list:
        """Per-group reduction bookkeeping as JSON-serializable dicts.

        This is what the serving layer persists next to the fitted PCE
        so a cached surrogate still documents how its reduced variables
        map back to the physical perturbation groups.
        """
        return [{
            "name": g.group.name,
            "kind": g.group.kind,
            "full_size": int(g.reduction.full_size),
            "reduced_size": int(g.reduction.reduced_size),
            "energy_captured": float(g.reduction.energy_captured),
            "offset": int(g.offset),
        } for g in self.reduced_space.groups]


def run_sscm_analysis(problem: VariationalProblem, method: str = "wpfa",
                      energy: float = 0.95,
                      max_variables_by_group: dict = None,
                      level: int = 2, fit: str = "quadrature",
                      nominal_solution=None,
                      progress=None) -> AnalysisResult:
    """Full SSCM pipeline (paper Sections II.B + III.C).

    1. Solve the nominal structure and derive the wPFA weights.
    2. Reduce every perturbation group ((w)PFA).
    3. Collocate the deterministic solver on the level-``level`` sparse
       grid over the ``d`` reduced variables.
    4. Fit the quadratic Hermite chaos and read off mean / std.
    """
    weights = None
    if method == "wpfa":
        weights = nominal_weights(problem, solution=nominal_solution)
    reduced_space = reduce_groups(
        problem.groups, method=method, weights_by_group=weights,
        energy=energy, max_variables_by_group=max_variables_by_group)

    def solve_fn(zeta):
        xi_by_group = reduced_space.split(zeta)
        return problem.evaluate_sample(xi_by_group)

    sscm = run_sscm(solve_fn, reduced_space.dim,
                    output_names=problem.qoi_names, level=level, fit=fit,
                    progress=progress)
    return AnalysisResult(sscm=sscm, reduced_space=reduced_space)


def run_mc_analysis(problem: VariationalProblem, num_runs: int,
                    seed: int = 0, keep_samples: bool = False,
                    progress=None) -> MonteCarloResult:
    """Monte-Carlo reference on the *full* correlated variables.

    Unlike the SSCM path this samples every group from its complete
    covariance (no reduction), exactly as the paper's 10000-run MC
    benchmark does, so the comparison includes the (w)PFA truncation
    error.
    """
    factors = {group.name: stable_cholesky(group.covariance)
               for group in problem.groups}
    groups = problem.groups

    def sample_fn(rng):
        xi_by_group = {
            group.name: factors[group.name]
            @ rng.standard_normal(group.size)
            for group in groups
        }
        return problem.evaluate_sample(xi_by_group)

    return run_monte_carlo(sample_fn, num_runs, seed=seed,
                           output_names=problem.qoi_names,
                           keep_samples=keep_samples, progress=progress)
