"""Pipeline runners: SSCM and Monte Carlo on a VariationalProblem.

``run_sscm_analysis`` (alias ``run_problem``) collocates either on the
paper's fixed level-2 Smolyak grid or — when a
:class:`~repro.adaptive.driver.AdaptiveConfig` is passed as
``refinement`` — through the dimension-adaptive engine, which spends
solves only on the stochastic directions whose surplus indicators say
they matter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adaptive.driver import (
    AdaptiveConfig,
    WarmStart,
    run_adaptive_sscm,
)
from repro.errors import StochasticError
from repro.obs.trace import span
from repro.stochastic.montecarlo import MonteCarloResult, run_monte_carlo
from repro.stochastic.reduction import ReducedSpace, reduce_groups
from repro.stochastic.sscm import SSCMResult, run_sscm
from repro.variation.random_field import stable_cholesky
from repro.analysis.parallel import ParallelWaveEvaluator
from repro.analysis.problem import VariationalProblem
from repro.analysis.weights import nominal_weights


@dataclass
class AnalysisResult:
    """SSCM pipeline output with the reduction bookkeeping."""

    sscm: SSCMResult
    reduced_space: ReducedSpace

    @property
    def mean(self) -> np.ndarray:
        return self.sscm.mean

    @property
    def std(self) -> np.ndarray:
        return self.sscm.std

    @property
    def num_runs(self) -> int:
        return self.sscm.num_runs

    @property
    def dim(self) -> int:
        return self.reduced_space.dim

    def summary(self) -> str:
        return (f"SSCM d={self.dim}, runs={self.num_runs}, "
                f"{self.reduced_space.summary()}")

    def reduction_metadata(self) -> list:
        """Per-group reduction bookkeeping as JSON-serializable dicts.

        This is what the serving layer persists next to the fitted PCE
        so a cached surrogate still documents how its reduced variables
        map back to the physical perturbation groups.
        """
        return [{
            "name": g.group.name,
            "kind": g.group.kind,
            "full_size": int(g.reduction.full_size),
            "reduced_size": int(g.reduction.reduced_size),
            "energy_captured": float(g.reduction.energy_captured),
            "offset": int(g.offset),
        } for g in self.reduced_space.groups]

    def refinement_metadata(self) -> dict:
        """Adaptive-build provenance (accepted index set, convergence
        trace, stopping config) as a JSON-serializable dict, or
        ``None`` for fixed-grid builds.  Persisted by the serving
        layer so adaptive surrogates replay from the store with zero
        solves *and* full audit history.
        """
        metadata = getattr(self.sscm, "refinement_metadata", None)
        return metadata() if callable(metadata) else None

    def basis_metadata(self) -> dict:
        """The fitted chaos basis identity (kind, order, size) as a
        JSON-serializable dict — ``total-degree`` order 2 for every
        fixed-grid or default adaptive build, ``explicit`` for
        order-adaptive ones.  Persisted in the surrogate sidecar so a
        stored entry documents what its coefficient rows mean.
        """
        return self.sscm.pce.basis.describe()


def run_sscm_analysis(problem: VariationalProblem, method: str = "wpfa",
                      energy: float = 0.95,
                      max_variables_by_group: dict = None,
                      level: int = 2, fit: str = "quadrature",
                      nominal_solution=None,
                      refinement: AdaptiveConfig = None,
                      problem_builder=None,
                      warm_start: WarmStart = None,
                      workers: int = None,
                      progress=None) -> AnalysisResult:
    """Full SSCM pipeline (paper Sections II.B + III.C).

    1. Solve the nominal structure and derive the wPFA weights.
    2. Reduce every perturbation group ((w)PFA).
    3. Collocate the deterministic solver over the ``d`` reduced
       variables: on the fixed level-``level`` sparse grid, or — when
       ``refinement`` carries an
       :class:`~repro.adaptive.driver.AdaptiveConfig` — through the
       dimension-adaptive engine under its ``tol`` / ``max_solves`` /
       ``max_level`` stopping controls.  ``level`` is then ignored
       (the engine grows its own grid) and ``fit`` must stay
       ``"quadrature"`` (the engine owns its projection); every
       collocation point still rides the multi-port
       factorization-reuse solve paths inside ``evaluate_sample``.
    4. Fit the quadratic Hermite chaos and read off mean / std.

    Parameters
    ----------
    problem : VariationalProblem
        The stochastic experiment to collocate.
    method : {"wpfa", "pfa"}, default "wpfa"
        Per-group reduction; ``"wpfa"`` weights the covariance with
        the nominal solution (one extra solve).
    energy : float, default 0.95
        Variance fraction retained per perturbation group.
    max_variables_by_group : dict, optional
        ``{group name: p}`` hard caps on the reduced counts.
    level : int, default 2
        Fixed Smolyak level (ignored under ``refinement``).
    fit : {"quadrature", "regression"}, default "quadrature"
        Chaos-fit strategy of the fixed-grid path; must stay
        ``"quadrature"`` under ``refinement``.
    nominal_solution : ACSolution, optional
        Reuse an existing nominal solve for the wPFA weights.
    refinement : AdaptiveConfig or dict, optional
        Switches collocation to the dimension-adaptive engine.  Its
        ``workers`` field fans each refinement wave over a
        :class:`~repro.analysis.parallel.ParallelWaveEvaluator`
        process pool (bitwise-identical results, ~cores less wall
        time); that requires ``problem_builder``.
    problem_builder : callable, optional
        Zero-argument *picklable* callable rebuilding ``problem`` in
        worker processes (e.g. ``functools.partial`` over a preset, or
        ``spec.build_problem``).  Only consulted when
        ``refinement.workers > 1``.
    warm_start : WarmStart, optional
        Seed the adaptive build from a previous build's accepted index
        set (see :class:`~repro.adaptive.driver.WarmStart`); requires
        ``refinement``.  The serving layer wires this automatically
        from the surrogate store's nearest stored sibling spec.
    workers : int, optional
        Fan the deterministic solves over this many worker processes
        — for *both* collocation modes.  The fixed level-``level``
        grid is evaluated as one
        :class:`~repro.analysis.parallel.ParallelWaveEvaluator` wave
        (bitwise-identical to the serial loop); adaptive builds treat
        it as the default when ``refinement.workers`` is unset.  Pure
        execution policy — never part of a spec cache key — and, like
        ``refinement.workers``, it requires ``problem_builder`` when
        above 1.
    progress : callable, optional
        ``(completed, total)`` callback for the collocation loop.

    Returns
    -------
    AnalysisResult
        The fitted surrogate plus reduction (and, for adaptive builds,
        refinement) bookkeeping.
    """
    if isinstance(refinement, dict):
        refinement = AdaptiveConfig.from_dict(refinement)
    if refinement is not None and fit != "quadrature":
        # The adaptive engine fits by combination projection; a
        # regression request would be silently overridden.
        raise StochasticError(
            f"fit={fit!r} is incompatible with adaptive "
            f"refinement (which owns its projection)")
    if warm_start is not None and refinement is None:
        raise StochasticError(
            "warm_start only applies to adaptive builds; pass a "
            "refinement config")
    if workers is not None \
            and (not isinstance(workers, int) or isinstance(workers, bool)
                 or workers < 1):
        raise StochasticError(
            f"workers must be a positive integer or None, "
            f"got {workers!r}")
    if refinement is not None and refinement.workers is not None:
        # The adaptive block's own knob wins over the reduction-level
        # one (they are the same execution policy at two scopes).
        workers = refinement.workers
    if workers is not None and workers > 1 and problem_builder is None:
        raise StochasticError(
            "workers > 1 needs a picklable problem_builder "
            "so worker processes can rebuild the problem (e.g. "
            "functools.partial over a preset, or spec.build_problem)")
    weights = None
    if method == "wpfa":
        with span("nominal_solve"):
            weights = nominal_weights(problem, solution=nominal_solution)
    with span("reduction", method=method):
        reduced_space = reduce_groups(
            problem.groups, method=method, weights_by_group=weights,
            energy=energy, max_variables_by_group=max_variables_by_group)

    def solve_fn(zeta):
        xi_by_group = reduced_space.split(zeta)
        return problem.evaluate_sample(xi_by_group)

    evaluator = None
    if workers is not None and workers > 1:
        evaluator = ParallelWaveEvaluator(
            problem_builder, reduced_space, num_workers=workers)
    try:
        if refinement is not None:
            sscm = run_adaptive_sscm(solve_fn, reduced_space.dim,
                                     config=refinement,
                                     output_names=problem.qoi_names,
                                     solve_many=evaluator,
                                     warm_start=warm_start,
                                     progress=progress)
        else:
            # The fixed grid is one big wave: the same evaluator that
            # fans adaptive refinement waves digests it whole,
            # bitwise-identical to the serial loop.
            sscm = run_sscm(solve_fn, reduced_space.dim,
                            output_names=problem.qoi_names, level=level,
                            fit=fit, progress=progress,
                            solve_many=evaluator)
    finally:
        if evaluator is not None:
            evaluator.close()
    return AnalysisResult(sscm=sscm, reduced_space=reduced_space)


#: The problem-level entry point by its serving-facing name: "run this
#: problem", fixed-grid by default, adaptive when ``refinement`` is set.
run_problem = run_sscm_analysis


def run_mc_analysis(problem: VariationalProblem, num_runs: int,
                    seed: int = 0, keep_samples: bool = False,
                    progress=None) -> MonteCarloResult:
    """Monte-Carlo reference on the *full* correlated variables.

    Unlike the SSCM path this samples every group from its complete
    covariance (no reduction), exactly as the paper's 10000-run MC
    benchmark does, so the comparison includes the (w)PFA truncation
    error.
    """
    factors = {group.name: stable_cholesky(group.covariance)
               for group in problem.groups}
    groups = problem.groups

    def sample_fn(rng):
        xi_by_group = {
            group.name: factors[group.name]
            @ rng.standard_normal(group.size)
            for group in groups
        }
        return problem.evaluate_sample(xi_by_group)

    return run_monte_carlo(sample_fn, num_runs, seed=seed,
                           output_names=problem.qoi_names,
                           keep_samples=keep_samples, progress=progress)
