"""High-level variational analysis — the paper's Section IV experiments.

A :class:`~repro.analysis.problem.VariationalProblem` bundles a
structure, its perturbation groups and a quantity of interest; the
runner executes the full pipeline: nominal solve, wPFA weights, per-group
reduction, sparse-grid collocation (SSCM), and the Monte-Carlo
reference.
"""

from repro.analysis.problem import VariationalProblem
from repro.analysis.qoi import (
    interface_current_magnitude,
    capacitance_column_qoi,
    capacitance_matrix_names,
    capacitance_matrix_qoi,
    per_port_qoi,
)
from repro.analysis.weights import nominal_weights
from repro.analysis.runner import (
    AnalysisResult,
    run_problem,
    run_sscm_analysis,
    run_mc_analysis,
)
from repro.analysis.results import ComparisonTable
from repro.analysis.speedup import SpeedupReport
from repro.analysis.parallel import (
    ParallelWaveEvaluator,
    run_mc_parallel,
    run_sscm_parallel,
)

__all__ = [
    "VariationalProblem",
    "interface_current_magnitude",
    "capacitance_column_qoi",
    "capacitance_matrix_names",
    "capacitance_matrix_qoi",
    "per_port_qoi",
    "nominal_weights",
    "AnalysisResult",
    "run_problem",
    "run_sscm_analysis",
    "run_mc_analysis",
    "ComparisonTable",
    "SpeedupReport",
    "ParallelWaveEvaluator",
    "run_mc_parallel",
    "run_sscm_parallel",
]
