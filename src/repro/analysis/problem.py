"""Problem definition for a variational analysis.

A :class:`VariationalProblem` is everything the stochastic drivers need
to turn a perturbation sample into a quantity-of-interest vector:

* the structure and solver settings (frequency, port excitations);
* the geometry perturbation groups (surface roughness) and the model
  that propagates them onto the mesh (CSV by default, the traditional
  direct model for the Fig. 1 ablation);
* the optional random-doping group and the nominal doping profile;
* the QoI extractor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import StochasticError
from repro.geometry.structure import Structure
from repro.materials.doping import DopingProfile, UniformDoping
from repro.solver.avsolver import AVSolver
from repro.variation.csv_model import ContinuousSurfaceModel
from repro.variation.doping_variation import RandomDopingModel
from repro.variation.naive_model import NaiveSurfaceModel
from repro.variation.groups import PerturbationGroup


@dataclass
class VariationalProblem:
    """One stochastic experiment (one row group of Table I / II).

    Parameters
    ----------
    structure:
        The nominal structure.
    frequency:
        Excitation frequency [Hz].
    excitations:
        ``{contact: complex voltage}`` port drive.  In multi-port mode
        (``ports`` set) this may be ``None``; it then defaults to the
        unit drive on ``ports[0]`` and is only used for the nominal
        (weighting) solution.
    qoi:
        Callable ``ACSolution -> 1-D float array`` (see
        :mod:`repro.analysis.qoi`).  In multi-port mode the callable
        instead receives ``{port name: ACSolution}`` with one entry per
        unit port drive.
    qoi_names:
        Labels of the QoI components.
    geometry_groups:
        Surface-roughness groups (may be empty for doping-only studies).
    doping_group:
        Optional RDF group.
    base_doping:
        Nominal doping profile used when the RDF perturbs it; defaults
        to the uniform profile of the structure's semiconductor.
    surface_model:
        ``"csv"`` (the paper's new model) or ``"naive"`` (Fig. 1a).
    recombination, full_wave:
        Forwarded to :class:`~repro.solver.avsolver.AVSolver`.
    ports:
        Optional ordered contact names enabling *multi-port QoI mode*:
        each sample is solved for every unit port drive in one batch
        (one equilibrium + one factorization + one multi-RHS solve via
        :meth:`AVSolver.solve_ports`) and ``qoi`` sees all ``P``
        solutions at once.  This is how a full admittance /
        capacitance matrix per sample costs barely more than a single
        drive.
    """

    structure: Structure
    frequency: float
    excitations: dict
    qoi: callable
    qoi_names: list
    geometry_groups: list = field(default_factory=list)
    doping_group: PerturbationGroup = None
    base_doping: DopingProfile = None
    surface_model: str = "csv"
    recombination: bool = True
    full_wave: bool = False
    ports: list = None
    #: Linear-solver backend designation forwarded to the
    #: :class:`AVSolver` (``None`` = resolve the ambient default; the
    #: serving layer pins an explicit pure-data
    #: :class:`~repro.solver.backends.SolverConfig` here so builds are
    #: environment-immune and the choice survives pickling into
    #: workers).
    solver_backend: object = None

    def __post_init__(self) -> None:
        if self.surface_model not in ("csv", "naive"):
            raise StochasticError(
                f"unknown surface model {self.surface_model!r}")
        if self.ports is not None:
            self.ports = list(self.ports)
            if not self.ports:
                raise StochasticError(
                    "ports must name at least one contact")
            if self.excitations is None:
                self.excitations = {
                    name: (1.0 if name == self.ports[0] else 0.0)
                    for name in self.ports}
        elif self.excitations is None:
            raise StochasticError(
                "excitations are required unless ports are given")
        if not self.geometry_groups and self.doping_group is None:
            raise StochasticError(
                "problem needs at least one perturbation group")
        for group in self.geometry_groups:
            if group.kind != "geometry":
                raise StochasticError(
                    f"group {group.name!r} is not a geometry group")
        if self.doping_group is not None:
            if self.doping_group.kind != "doping":
                raise StochasticError("doping_group must have kind doping")
            if self.base_doping is None:
                material = self.structure.primary_semiconductor()
                self.base_doping = UniformDoping(material.net_doping)
        self._solver = None
        self._surface = None
        self._doping_model = None

    # ------------------------------------------------------------------
    @property
    def solver(self) -> AVSolver:
        if self._solver is None:
            self._solver = AVSolver(self.structure, self.frequency,
                                    recombination=self.recombination,
                                    full_wave=self.full_wave,
                                    backend=self.solver_backend)
        return self._solver

    @property
    def groups(self) -> list:
        """All perturbation groups, geometry first, doping last."""
        groups = list(self.geometry_groups)
        if self.doping_group is not None:
            groups.append(self.doping_group)
        return groups

    def _surface_model(self):
        if self._surface is None:
            model_cls = (ContinuousSurfaceModel
                         if self.surface_model == "csv"
                         else NaiveSurfaceModel)
            self._surface = model_cls(self.structure.grid)
        return self._surface

    def _get_doping_model(self) -> RandomDopingModel:
        if self._doping_model is None:
            self._doping_model = RandomDopingModel(
                self.base_doping, self.doping_group,
                self.structure.grid.num_nodes)
        return self._doping_model

    # ------------------------------------------------------------------
    def anchors_for(self, xi_by_group: dict) -> dict:
        """Merge per-group displacement vectors into per-axis anchors."""
        anchors = {}
        for group in self.geometry_groups:
            xi = np.asarray(xi_by_group[group.name], dtype=float)
            if xi.shape != (group.size,):
                raise StochasticError(
                    f"group {group.name!r}: expected {group.size} values, "
                    f"got {xi.shape}")
            if group.axis in anchors:
                ids, vals = anchors[group.axis]
                anchors[group.axis] = (
                    np.concatenate([ids, group.node_ids]),
                    np.concatenate([vals, xi]))
            else:
                anchors[group.axis] = (group.node_ids.copy(), xi.copy())
        return anchors

    def _sample_inputs(self, xi_by_group: dict):
        """Resolve one perturbation sample to solver arguments."""
        geometry = None
        if self.geometry_groups:
            anchors = self.anchors_for(xi_by_group)
            geometry = self._surface_model().perturbed_grid(
                anchors, links=self.solver.links)
        doping_profile = None
        if self.doping_group is not None:
            xi = np.asarray(xi_by_group[self.doping_group.name],
                            dtype=float)
            doping_profile = self._get_doping_model().profile_for(xi)
        return geometry, doping_profile

    def solve_sample(self, xi_by_group: dict):
        """Run one deterministic coupled solve for a perturbation sample.

        ``xi_by_group`` maps group names to full-size perturbation
        vectors (node displacements [m] for geometry groups, relative
        doping perturbations for the doping group).

        Returns a single :class:`~repro.solver.ac.ACSolution`, or — in
        multi-port mode — ``{port name: ACSolution}`` from one batched
        :meth:`AVSolver.solve_ports` call (all drives share the
        sample's equilibrium and factorization).
        """
        geometry, doping_profile = self._sample_inputs(xi_by_group)
        if self.ports is not None:
            solutions = self.solver.solve_ports(
                self.ports, geometry=geometry,
                doping_profile=doping_profile)
            return dict(zip(self.ports, solutions))
        return self.solver.solve(self.excitations, geometry=geometry,
                                 doping_profile=doping_profile)

    def evaluate_sample(self, xi_by_group: dict) -> np.ndarray:
        """QoI vector of one perturbation sample."""
        solution = self.solve_sample(xi_by_group)
        values = np.atleast_1d(np.asarray(self.qoi(solution), dtype=float))
        if values.shape != (len(self.qoi_names),):
            raise StochasticError(
                f"qoi returned {values.shape}, expected "
                f"({len(self.qoi_names)},)")
        return values

    def nominal_solution(self):
        """Solve the unperturbed structure (wPFA weights, Fig. 2b)."""
        return self.solver.solve(self.excitations)

    # ------------------------------------------------------------------
    def spec_signature(self) -> dict:
        """Deterministic content fingerprint of the problem.

        JSON-serializable and stable across processes: grid axes,
        frequency, solver flags, QoI labels and a digest of every
        perturbation group's covariance.  The serving layer stores this
        alongside a cached surrogate so a hit can be audited against
        the problem it claims to model (the cache *key* is the
        declarative :class:`~repro.serving.spec.ProblemSpec`; this is
        the resolved-problem cross-check).
        """
        import hashlib

        def digest(array) -> str:
            data = np.ascontiguousarray(np.asarray(array, dtype=float))
            return hashlib.sha256(data.tobytes()).hexdigest()[:16]

        grid = self.structure.grid
        groups = [{
            "name": group.name,
            "kind": group.kind,
            "size": int(group.size),
            "axis": None if group.axis is None else int(group.axis),
            "covariance_sha": digest(group.covariance),
        } for group in self.groups]
        return {
            "grid_axes_sha": digest(np.concatenate(
                [grid.xs, grid.ys, grid.zs])),
            "num_nodes": int(grid.num_nodes),
            "frequency": float(self.frequency),
            "excitations": sorted(
                (name, [float(np.real(v)), float(np.imag(v))])
                for name, v in self.excitations.items()),
            "surface_model": self.surface_model,
            "recombination": bool(self.recombination),
            "full_wave": bool(self.full_wave),
            "ports": None if self.ports is None else list(self.ports),
            "qoi_names": list(self.qoi_names),
            "groups": groups,
        }
