"""Problem definition for a variational analysis.

A :class:`VariationalProblem` is everything the stochastic drivers need
to turn a perturbation sample into a quantity-of-interest vector:

* the structure and solver settings (frequency, port excitations);
* the geometry perturbation groups (surface roughness) and the model
  that propagates them onto the mesh (CSV by default, the traditional
  direct model for the Fig. 1 ablation);
* the optional random-doping group and the nominal doping profile;
* the QoI extractor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import StochasticError
from repro.geometry.structure import Structure
from repro.materials.doping import DopingProfile, UniformDoping
from repro.solver.avsolver import AVSolver
from repro.variation.csv_model import ContinuousSurfaceModel
from repro.variation.doping_variation import RandomDopingModel
from repro.variation.naive_model import NaiveSurfaceModel
from repro.variation.groups import PerturbationGroup


@dataclass
class VariationalProblem:
    """One stochastic experiment (one row group of Table I / II).

    Parameters
    ----------
    structure:
        The nominal structure.
    frequency:
        Excitation frequency [Hz].
    excitations:
        ``{contact: complex voltage}`` port drive.
    qoi:
        Callable ``ACSolution -> 1-D float array`` (see
        :mod:`repro.analysis.qoi`).
    qoi_names:
        Labels of the QoI components.
    geometry_groups:
        Surface-roughness groups (may be empty for doping-only studies).
    doping_group:
        Optional RDF group.
    base_doping:
        Nominal doping profile used when the RDF perturbs it; defaults
        to the uniform profile of the structure's semiconductor.
    surface_model:
        ``"csv"`` (the paper's new model) or ``"naive"`` (Fig. 1a).
    recombination, full_wave:
        Forwarded to :class:`~repro.solver.avsolver.AVSolver`.
    """

    structure: Structure
    frequency: float
    excitations: dict
    qoi: callable
    qoi_names: list
    geometry_groups: list = field(default_factory=list)
    doping_group: PerturbationGroup = None
    base_doping: DopingProfile = None
    surface_model: str = "csv"
    recombination: bool = True
    full_wave: bool = False

    def __post_init__(self) -> None:
        if self.surface_model not in ("csv", "naive"):
            raise StochasticError(
                f"unknown surface model {self.surface_model!r}")
        if not self.geometry_groups and self.doping_group is None:
            raise StochasticError(
                "problem needs at least one perturbation group")
        for group in self.geometry_groups:
            if group.kind != "geometry":
                raise StochasticError(
                    f"group {group.name!r} is not a geometry group")
        if self.doping_group is not None:
            if self.doping_group.kind != "doping":
                raise StochasticError("doping_group must have kind doping")
            if self.base_doping is None:
                material = self.structure.primary_semiconductor()
                self.base_doping = UniformDoping(material.net_doping)
        self._solver = None
        self._surface = None
        self._doping_model = None

    # ------------------------------------------------------------------
    @property
    def solver(self) -> AVSolver:
        if self._solver is None:
            self._solver = AVSolver(self.structure, self.frequency,
                                    recombination=self.recombination,
                                    full_wave=self.full_wave)
        return self._solver

    @property
    def groups(self) -> list:
        """All perturbation groups, geometry first, doping last."""
        groups = list(self.geometry_groups)
        if self.doping_group is not None:
            groups.append(self.doping_group)
        return groups

    def _surface_model(self):
        if self._surface is None:
            model_cls = (ContinuousSurfaceModel
                         if self.surface_model == "csv"
                         else NaiveSurfaceModel)
            self._surface = model_cls(self.structure.grid)
        return self._surface

    def _get_doping_model(self) -> RandomDopingModel:
        if self._doping_model is None:
            self._doping_model = RandomDopingModel(
                self.base_doping, self.doping_group,
                self.structure.grid.num_nodes)
        return self._doping_model

    # ------------------------------------------------------------------
    def anchors_for(self, xi_by_group: dict) -> dict:
        """Merge per-group displacement vectors into per-axis anchors."""
        anchors = {}
        for group in self.geometry_groups:
            xi = np.asarray(xi_by_group[group.name], dtype=float)
            if xi.shape != (group.size,):
                raise StochasticError(
                    f"group {group.name!r}: expected {group.size} values, "
                    f"got {xi.shape}")
            if group.axis in anchors:
                ids, vals = anchors[group.axis]
                anchors[group.axis] = (
                    np.concatenate([ids, group.node_ids]),
                    np.concatenate([vals, xi]))
            else:
                anchors[group.axis] = (group.node_ids.copy(), xi.copy())
        return anchors

    def solve_sample(self, xi_by_group: dict):
        """Run one deterministic coupled solve for a perturbation sample.

        ``xi_by_group`` maps group names to full-size perturbation
        vectors (node displacements [m] for geometry groups, relative
        doping perturbations for the doping group).
        """
        solver = self.solver
        geometry = None
        if self.geometry_groups:
            anchors = self.anchors_for(xi_by_group)
            perturbed = self._surface_model().perturbed_grid(
                anchors, links=solver.links)
            geometry = perturbed
        doping_profile = None
        if self.doping_group is not None:
            xi = np.asarray(xi_by_group[self.doping_group.name],
                            dtype=float)
            doping_profile = self._get_doping_model().profile_for(xi)
        return solver.solve(self.excitations, geometry=geometry,
                            doping_profile=doping_profile)

    def evaluate_sample(self, xi_by_group: dict) -> np.ndarray:
        """QoI vector of one perturbation sample."""
        solution = self.solve_sample(xi_by_group)
        values = np.atleast_1d(np.asarray(self.qoi(solution), dtype=float))
        if values.shape != (len(self.qoi_names),):
            raise StochasticError(
                f"qoi returned {values.shape}, expected "
                f"({len(self.qoi_names)},)")
        return values

    def nominal_solution(self):
        """Solve the unperturbed structure (wPFA weights, Fig. 2b)."""
        return self.solver.solve(self.excitations)
