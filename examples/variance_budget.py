"""Variance budget: which variation source drives the spread?

Extends the paper's quadratic statistical model with a Sobol variance
decomposition (free once the PCE is fitted): how much of the interface
current's variance comes from each roughness group versus the random
doping profile, and how much is cross-source interaction.

Run:  python examples/variance_budget.py
"""

from repro.analysis import run_sscm_analysis
from repro.experiments import Table1Config, table1_problem
from repro.geometry import MetalPlugDesign
from repro.reporting import format_table
from repro.stochastic import group_indices_from_reduced_space
from repro.units import um


def main() -> None:
    problem = table1_problem("both", Table1Config(
        design=MetalPlugDesign(max_step=um(2.0)), rdf_nodes=16))
    result = run_sscm_analysis(
        problem, energy=0.95,
        max_variables_by_group={"plug1_interface": 3,
                                "plug2_interface": 3, "doping": 3})
    print(f"quadratic model: {result.summary()}")
    print(f"mean |J| = {result.mean[0] / 1e-6:.4f} uA, "
          f"std = {result.std[0] / 1e-6:.4f} uA\n")

    shares = group_indices_from_reduced_space(result.sscm.pce,
                                              result.reduced_space)
    rows = [[name, float(share[0])]
            for name, share in sorted(shares.items(),
                                      key=lambda kv: -kv[1][0])]
    print(format_table(["variance source", "share of Var[J]"], rows,
                       title="Sobol variance budget of the interface "
                             "current"))


if __name__ == "__main__":
    main()
