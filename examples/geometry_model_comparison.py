"""Fig. 1 demonstration: traditional vs continuous surface variation.

Sweeps the roughness amplitude sigma_G on the TSV lateral walls and
measures, for each model, the fraction of Monte-Carlo samples whose
mesh survives (no node-ordering violation).  The traditional model of
Fig. 1(a) starts destroying the mesh once sigma_G approaches the local
mesh step; the CSV model of Fig. 1(b) never does.

Run:  python examples/geometry_model_comparison.py
"""

import numpy as np

from repro.geometry import TsvDesign, build_tsv_structure
from repro.reporting import Series, format_series
from repro.units import um
from repro.variation import (
    ContinuousSurfaceModel,
    NaiveSurfaceModel,
    geometry_groups_from_facets,
)
from repro.variation.random_field import stable_cholesky

SIGMA_SWEEP_UM = (0.1, 0.25, 0.5, 0.75, 1.0, 1.5)
SAMPLES_PER_SIGMA = 40


def survival_fraction(model, groups, factors, sigma_scale, rng) -> float:
    survived = 0
    for _ in range(SAMPLES_PER_SIGMA):
        anchors = {}
        for group in groups:
            values = sigma_scale * (factors[group.name]
                                    @ rng.standard_normal(group.size))
            if group.axis in anchors:
                ids, vals = anchors[group.axis]
                anchors[group.axis] = (
                    np.concatenate([ids, group.node_ids]),
                    np.concatenate([vals, values]))
            else:
                anchors[group.axis] = (group.node_ids, values)
        if model.perturbed_grid(anchors).validity().valid:
            survived += 1
    return survived / SAMPLES_PER_SIGMA


def main() -> None:
    design = TsvDesign(max_step=um(1.25))
    structure = build_tsv_structure(design)
    print(structure.summary())
    # Unit-sigma groups; the sweep rescales the samples.
    groups = geometry_groups_from_facets(structure.grid,
                                         design.lateral_facets(),
                                         sigma=1.0, eta=um(0.7))
    factors = {g.name: stable_cholesky(g.covariance) for g in groups}

    rng_naive = np.random.default_rng(0)
    rng_csv = np.random.default_rng(0)
    naive = NaiveSurfaceModel(structure.grid)
    csv = ContinuousSurfaceModel(structure.grid)
    naive_rates = []
    csv_rates = []
    for sigma_um in SIGMA_SWEEP_UM:
        sigma = um(sigma_um)
        naive_rates.append(survival_fraction(naive, groups, factors,
                                             sigma, rng_naive))
        csv_rates.append(survival_fraction(csv, groups, factors, sigma,
                                           rng_csv))

    sweep = np.array(SIGMA_SWEEP_UM)
    print()
    print(format_series(
        [Series("traditional", sweep, np.array(naive_rates)),
         Series("CSV (paper)", sweep, np.array(csv_rates))],
        x_label="sigma_G [um]",
        title="Mesh survival fraction vs roughness amplitude (Fig. 1)"))
    print("\nlocal mesh step near the TSV walls: "
          f"{um(1.25) * 1e6:.2f} um")


if __name__ == "__main__":
    main()
