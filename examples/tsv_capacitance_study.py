"""Table II in miniature: variational TSV capacitance extraction.

Builds the Fig. 3 two-TSV structure, perturbs the TSV lateral walls
(8 facet groups, coplanar walls merged as in Section IV.B) and the
substrate doping, and compares the SSCM quadratic model against Monte
Carlo for the six capacitances of Table II.

Run:  python examples/tsv_capacitance_study.py
"""

from repro.analysis import (
    ComparisonTable,
    run_mc_analysis,
    run_sscm_analysis,
)
from repro.experiments import Table2Config, table2_problem
from repro.geometry import TsvDesign
from repro.units import um

SCALE = {"max_step": um(2.5), "margin": um(2.5), "rdf_nodes": 24,
         "mc_runs": 120}


def main() -> None:
    config = Table2Config(
        design=TsvDesign(max_step=SCALE["max_step"],
                         margin=SCALE["margin"]),
        rdf_nodes=SCALE["rdf_nodes"])
    problem = table2_problem(config)
    print("perturbation groups:")
    for group in problem.groups:
        print(f"  {group.name}: {group.size} correlated variables")

    caps = {g.name: (3 if "+tsv" in g.name else 2)
            for g in problem.geometry_groups}
    caps["doping"] = 3
    sscm = run_sscm_analysis(problem, energy=0.99,
                             max_variables_by_group=caps)
    print(f"\nreduction: {sscm.reduced_space.summary()}\n")

    mc = run_mc_analysis(problem, num_runs=SCALE["mc_runs"], seed=7)
    table = ComparisonTable.from_results(mc, sscm, unit_scale=1e-15,
                                         unit_label="fF")
    print(table.render("Table II: TSV capacitances with roughness + RDF"))


if __name__ == "__main__":
    main()
