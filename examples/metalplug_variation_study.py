"""Table I in miniature: variational analysis of the interface current.

Runs the paper's Section IV.A experiment at reduced scale: surface
roughness (sigma_G) on the plug/silicon interfaces and random doping
fluctuation (sigma_M) in the substrate, analyzed with wPFA + sparse-grid
SSCM and validated against Monte Carlo, for all three variation
settings of Table I.

Run:  python examples/metalplug_variation_study.py
(takes a couple of minutes; tune SCALE below for speed)
"""

from repro.analysis import (
    ComparisonTable,
    run_mc_analysis,
    run_sscm_analysis,
)
from repro.experiments import Table1Config, table1_problem
from repro.geometry import MetalPlugDesign
from repro.units import um

#: Resolution / cost knob: mesh step [m], RDF node count, MC runs.
SCALE = {"max_step": um(2.0), "rdf_nodes": 16, "mc_runs": 120}

#: Reduced-variable budget per group (the paper's wPFA keeps 12 of 32
#: interface and 10 of 72 doping variables; scaled down here).
CAPS = {"plug1_interface": 2, "plug2_interface": 2, "doping": 3}


def main() -> None:
    config = Table1Config(
        design=MetalPlugDesign(max_step=SCALE["max_step"]),
        rdf_nodes=SCALE["rdf_nodes"])

    for variant, label in (("geometry", "sigma_G != 0, sigma_M = 0"),
                           ("doping", "sigma_G = 0, sigma_M != 0"),
                           ("both", "sigma_G != 0, sigma_M != 0")):
        problem = table1_problem(variant, config)
        sscm = run_sscm_analysis(problem, energy=0.95,
                                 max_variables_by_group=CAPS)
        mc = run_mc_analysis(problem, num_runs=SCALE["mc_runs"],
                             seed=42)
        table = ComparisonTable.from_results(mc, sscm, unit_scale=1e-6,
                                             unit_label="uA")
        print(table.render(f"Table I row: {label}"))
        print(f"  reduction: {sscm.reduced_space.summary()}")
        print()


if __name__ == "__main__":
    main()
