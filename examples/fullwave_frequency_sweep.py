"""Full-wave A-V mode: the induction correction across frequency.

The paper's eq. (3) couples the vector potential A into the system; at
1 GHz on micrometre structures that correction is negligible (which is
why the stochastic studies run quasi-static), but it grows with
frequency.  This example quantifies it with two batched frequency
sweeps — one quasi-static, one with the Ampere pass.  Each sweep
solves a single DC equilibrium and one factorization per frequency
shared by both port drives (the full-wave correction re-solve reuses
the same factorization), so the whole comparison costs a handful of
LU decompositions instead of one per port, frequency and mode.

Run:  python examples/fullwave_frequency_sweep.py
"""

import numpy as np

from repro import build_metalplug_structure
from repro.geometry import MetalPlugDesign
from repro.reporting import Series, format_series
from repro.solver.sweep import frequency_sweep
from repro.units import um

FREQUENCIES_GHZ = (0.5, 1.0, 5.0, 20.0, 50.0)


def main() -> None:
    structure = build_metalplug_structure(MetalPlugDesign(
        max_step=um(1.25)))
    frequencies = [f * 1e9 for f in FREQUENCIES_GHZ]
    ports = ["plug1", "plug2"]

    quasi = frequency_sweep(structure, frequencies, ports=ports)
    full = frequency_sweep(structure, frequencies, ports=ports,
                           full_wave=True)

    i_qs = quasi.input_admittance("plug1")
    i_fw = full.input_admittance("plug1")
    rel_corrections = np.abs(i_fw - i_qs) / np.abs(i_qs)

    # The sweep result axis is the unique sorted frequency list; use it
    # (not the input tuple) so the rows always pair correctly.
    freqs = quasi.frequencies / 1e9
    print(format_series(
        [Series("|I| quasi-static [A]", freqs, np.abs(i_qs)),
         Series("relative A-correction", freqs, rel_corrections)],
        x_label="f [GHz]",
        title="Induction (vector potential) correction vs frequency"))
    at_1ghz = np.flatnonzero(np.isclose(quasi.frequencies, 1.0e9))
    if at_1ghz.size:
        print("\nAt the paper's 1 GHz the correction is "
              f"{rel_corrections[at_1ghz[0]]:.2e} - quasi-static is "
              "justified.")


if __name__ == "__main__":
    main()
