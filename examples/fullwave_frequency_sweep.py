"""Full-wave A-V mode: the induction correction across frequency.

The paper's eq. (3) couples the vector potential A into the system; at
1 GHz on micrometre structures that correction is negligible (which is
why the stochastic studies run quasi-static), but it grows with
frequency.  This example quantifies it: for each frequency the port
admittance is computed quasi-statically and with the Ampere pass, and
the relative difference is reported.

Run:  python examples/fullwave_frequency_sweep.py
"""

import numpy as np

from repro import AVSolver, build_metalplug_structure
from repro.extraction import port_current
from repro.geometry import MetalPlugDesign
from repro.reporting import Series, format_series
from repro.units import um

FREQUENCIES_GHZ = (0.5, 1.0, 5.0, 20.0, 50.0)


def main() -> None:
    structure = build_metalplug_structure(MetalPlugDesign(
        max_step=um(1.25)))
    excitation = {"plug1": 1.0, "plug2": 0.0}

    rel_corrections = []
    magnitudes = []
    for freq_ghz in FREQUENCIES_GHZ:
        freq = freq_ghz * 1e9
        quasi = AVSolver(structure, frequency=freq)
        full = AVSolver(structure, frequency=freq, full_wave=True)
        i_qs = port_current(quasi.solve(excitation), "plug1")
        i_fw = port_current(full.solve(excitation), "plug1")
        rel_corrections.append(abs(i_fw - i_qs) / abs(i_qs))
        magnitudes.append(abs(i_qs))

    freqs = np.array(FREQUENCIES_GHZ)
    print(format_series(
        [Series("|I| quasi-static [A]", freqs, np.array(magnitudes)),
         Series("relative A-correction", freqs,
                np.array(rel_corrections))],
        x_label="f [GHz]",
        title="Induction (vector potential) correction vs frequency"))
    print("\nAt the paper's 1 GHz the correction is "
          f"{rel_corrections[1]:.2e} - quasi-static is justified.")


if __name__ == "__main__":
    main()
