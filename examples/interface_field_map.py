"""Fig. 2(b) reproduction: potential map on the metal/silicon interface.

Solves the nominal metal-plug structure and prints the |V| cross
section on the plane just below the metal-semiconductor interface —
the data behind the paper's Fig. 2(b) colour map (high under the driven
plug, decaying toward the grounded one).

Run:  python examples/interface_field_map.py
"""

import numpy as np

from repro import AVSolver, build_metalplug_structure
from repro.extraction import potential_cross_section
from repro.units import um


def main() -> None:
    structure = build_metalplug_structure()
    solver = AVSolver(structure, frequency=1.0e9)
    solution = solver.solve({"plug1": 1.0, "plug2": 0.0})

    xs, ys, values = potential_cross_section(solution, axis=2,
                                             coordinate=um(10.0))
    mags = np.abs(values)

    print("|V| on the metal-semiconductor interface plane "
          "(rows = x [um], cols = y [um])\n")
    header = "x\\y   " + " ".join(f"{y * 1e6:6.1f}" for y in ys)
    print(header)
    for i, x in enumerate(xs):
        row = " ".join(f"{mags[i, j]:6.3f}" for j in range(ys.size))
        print(f"{x * 1e6:5.1f} {row}")

    # A coarse ASCII rendering of the same map.
    shades = " .:-=+*#%@"
    print("\nASCII field map (@ = 1 V):")
    for i in range(xs.size):
        line = "".join(
            shades[min(int(mags[i, j] * (len(shades) - 1) + 0.5),
                       len(shades) - 1)]
            for j in range(ys.size))
        print("  " + line)


if __name__ == "__main__":
    main()
