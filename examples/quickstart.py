"""Quickstart: solve the paper's metal-plug structure deterministically.

Builds the Fig. 2(a) structure (two metal plugs on doped silicon),
solves the coupled EM-semiconductor system at 1 GHz with plug 1 driven
at 1 V, and extracts the port and interface currents — the quantity
Table I studies under process variations.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AVSolver, build_metalplug_structure
from repro.extraction import metal_semiconductor_current, port_current
from repro.extraction.capacitance import conductor_mask_for_contact
from repro.reporting import format_kv_block
from repro.units import to_microampere


def main() -> None:
    structure = build_metalplug_structure()
    print(structure.summary())
    print()

    solver = AVSolver(structure, frequency=1.0e9)
    solution = solver.solve({"plug1": 1.0, "plug2": 0.0})

    i_plug1 = port_current(solution, "plug1")
    i_plug2 = port_current(solution, "plug2")
    plug1_nodes = np.nonzero(conductor_mask_for_contact(
        structure, solution.geometry.links, "plug1"))[0]
    j_interface = metal_semiconductor_current(solution,
                                              restrict_nodes=plug1_nodes)

    print(format_kv_block([
        ("frequency", "1 GHz"),
        ("drive", "plug1 = 1 V, plug2 = 0 V"),
        ("port current plug1 [uA]",
         f"{to_microampere(abs(i_plug1)):.4f}"),
        ("port current plug2 [uA]",
         f"{to_microampere(abs(i_plug2)):.4f}"),
        ("KCL residual [A]", f"{abs(i_plug1 + i_plug2):.3e}"),
        ("interface current |J| [uA]",
         f"{to_microampere(abs(j_interface)):.4f}"),
        ("DC Newton iterations", solution.equilibrium.iterations),
    ], title="Deterministic coupled solve (paper Section IV.A setup)"))


if __name__ == "__main__":
    main()
